/**
 * @file
 * Vectorized host primitives for the hot inner loops: dot product,
 * FMA-accumulate and squared-L2 distance over contiguous float spans.
 *
 * The instruction set is chosen once at compile time (AVX2 > SSE2 >
 * NEON > scalar), so results are deterministic for a given build: lane
 * partial sums are folded in a fixed order and the scalar tail is
 * handled identically everywhere.  Different ISAs may differ in the
 * last float bits (different accumulation orders) — callers that need
 * cross-build bit-stability must stick to one binary, which is the same
 * contract the analytic cost model already has.
 *
 * The portable baseline build (no -march flags) uses SSE2 on x86-64 and
 * NEON on aarch64; AVX2/FMA engage automatically when the compiler is
 * allowed to emit them.
 */
#pragma once

#include <cstddef>

#if defined(__AVX2__)
#include <immintrin.h>
#define VQLLM_SIMD_AVX2 1
#elif defined(__SSE2__) || defined(_M_X64) || defined(__x86_64__)
#include <emmintrin.h>
#define VQLLM_SIMD_SSE2 1
#elif defined(__aarch64__)
// vaddvq_f32 needs aarch64; 32-bit ARM falls back to scalar.
#include <arm_neon.h>
#define VQLLM_SIMD_NEON 1
#endif

namespace vqllm::simd {

/** @return name of the compiled-in instruction set. */
inline const char *
activeIsa()
{
#if defined(VQLLM_SIMD_AVX2)
    return "avx2";
#elif defined(VQLLM_SIMD_SSE2)
    return "sse2";
#elif defined(VQLLM_SIMD_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

#if defined(VQLLM_SIMD_AVX2)

namespace detail {
inline float
hsum256(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    return _mm_cvtss_f32(s);
}
} // namespace detail

/** @return sum_i a[i] * b[i]. */
inline float
dot(const float *a, const float *b, std::size_t n)
{
    __m256 acc = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 va = _mm256_loadu_ps(a + i);
        __m256 vb = _mm256_loadu_ps(b + i);
#if defined(__FMA__)
        acc = _mm256_fmadd_ps(va, vb, acc);
#else
        acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
#endif
    }
    float sum = detail::hsum256(acc);
    for (; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

/** @return sum_i (a[i] - b[i])^2. */
inline float
squaredDistance(const float *a, const float *b, std::size_t n)
{
    __m256 acc = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                 _mm256_loadu_ps(b + i));
#if defined(__FMA__)
        acc = _mm256_fmadd_ps(d, d, acc);
#else
        acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
#endif
    }
    float sum = detail::hsum256(acc);
    for (; i < n; ++i) {
        float d = a[i] - b[i];
        sum += d * d;
    }
    return sum;
}

/** acc[i] += s * x[i] for i in [0, n). */
inline void
fmaInto(float *acc, const float *x, float s, std::size_t n)
{
    __m256 vs = _mm256_set1_ps(s);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 va = _mm256_loadu_ps(acc + i);
        __m256 vx = _mm256_loadu_ps(x + i);
#if defined(__FMA__)
        va = _mm256_fmadd_ps(vx, vs, va);
#else
        va = _mm256_add_ps(va, _mm256_mul_ps(vx, vs));
#endif
        _mm256_storeu_ps(acc + i, va);
    }
    for (; i < n; ++i)
        acc[i] += s * x[i];
}

#elif defined(VQLLM_SIMD_SSE2)

namespace detail {
inline float
hsum128(__m128 v)
{
    __m128 s = _mm_add_ps(v, _mm_movehl_ps(v, v));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    return _mm_cvtss_f32(s);
}
} // namespace detail

inline float
dot(const float *a, const float *b, std::size_t n)
{
    __m128 acc = _mm_setzero_ps();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        acc = _mm_add_ps(acc, _mm_mul_ps(_mm_loadu_ps(a + i),
                                         _mm_loadu_ps(b + i)));
    float sum = detail::hsum128(acc);
    for (; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

inline float
squaredDistance(const float *a, const float *b, std::size_t n)
{
    __m128 acc = _mm_setzero_ps();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m128 d = _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i));
        acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
    }
    float sum = detail::hsum128(acc);
    for (; i < n; ++i) {
        float d = a[i] - b[i];
        sum += d * d;
    }
    return sum;
}

inline void
fmaInto(float *acc, const float *x, float s, std::size_t n)
{
    __m128 vs = _mm_set1_ps(s);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm_storeu_ps(acc + i,
                      _mm_add_ps(_mm_loadu_ps(acc + i),
                                 _mm_mul_ps(_mm_loadu_ps(x + i), vs)));
    for (; i < n; ++i)
        acc[i] += s * x[i];
}

#elif defined(VQLLM_SIMD_NEON)

inline float
dot(const float *a, const float *b, std::size_t n)
{
    float32x4_t acc = vdupq_n_f32(0.0f);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        acc = vmlaq_f32(acc, vld1q_f32(a + i), vld1q_f32(b + i));
    float sum = vaddvq_f32(acc);
    for (; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

inline float
squaredDistance(const float *a, const float *b, std::size_t n)
{
    float32x4_t acc = vdupq_n_f32(0.0f);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        float32x4_t d = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
        acc = vmlaq_f32(acc, d, d);
    }
    float sum = vaddvq_f32(acc);
    for (; i < n; ++i) {
        float d = a[i] - b[i];
        sum += d * d;
    }
    return sum;
}

inline void
fmaInto(float *acc, const float *x, float s, std::size_t n)
{
    float32x4_t vs = vdupq_n_f32(s);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        vst1q_f32(acc + i,
                  vmlaq_f32(vld1q_f32(acc + i), vld1q_f32(x + i), vs));
    for (; i < n; ++i)
        acc[i] += s * x[i];
}

#else // scalar fallback

inline float
dot(const float *a, const float *b, std::size_t n)
{
    float sum = 0.0f;
    for (std::size_t i = 0; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

inline float
squaredDistance(const float *a, const float *b, std::size_t n)
{
    float sum = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        float d = a[i] - b[i];
        sum += d * d;
    }
    return sum;
}

inline void
fmaInto(float *acc, const float *x, float s, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        acc[i] += s * x[i];
}

#endif

} // namespace vqllm::simd
