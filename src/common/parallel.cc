#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/logging.h"

namespace vqllm::par {

namespace {

/** Set while the current thread executes chunks for a pool job. */
thread_local bool tls_in_worker = false;

std::atomic<int> g_thread_override{0};

int
envThreads()
{
    const char *env = std::getenv("VQLLM_THREADS");
    if (env == nullptr || *env == '\0')
        return 0;
    int n = std::atoi(env);
    return n > 0 ? n : 0;
}

/**
 * Persistent worker pool.  One job runs at a time (top-level calls are
 * serialized; nested calls run inline); participants grab chunk indices
 * from a shared atomic cursor, so scheduling is dynamic while the chunk
 * layout itself stays static.
 *
 * Workers register as drainers under the pool mutex in the same
 * critical section that reads the job generation, so run() can wait for
 * both "all chunks executed" and "no worker still holds the job
 * function" before returning — the job function's lifetime ends with
 * run().
 */
class ThreadPool
{
  public:
    static ThreadPool &
    instance()
    {
        // Intentionally leaked: a static destructor would join worker
        // threads at exit, which deadlocks or crashes in processes
        // that fork after the pool spun up (gtest death tests) and in
        // exit-while-working paths (vqllm_fatal).  Process teardown
        // reclaims the threads.
        static ThreadPool *pool = new ThreadPool;
        return *pool;
    }

    void
    run(std::size_t tasks, int threads,
        const std::function<void(std::size_t)> &fn)
    {
        if (tasks == 0)
            return;
        if (threads <= 1 || tasks == 1 || tls_in_worker) {
            for (std::size_t i = 0; i < tasks; ++i)
                fn(i);
            return;
        }

        std::unique_lock<std::mutex> top(run_mutex_);
        ensureWorkers(threads - 1);
        {
            std::lock_guard<std::mutex> g(m_);
            job_fn_ = &fn;
            job_tasks_ = tasks;
            job_next_.store(0, std::memory_order_relaxed);
            job_remaining_.store(tasks, std::memory_order_relaxed);
            // Workers beyond the requested thread count sit this job
            // out so measured scaling matches the requested count.
            worker_slots_ = threads - 1;
            ++generation_;
        }
        cv_.notify_all();

        drain();

        std::unique_lock<std::mutex> g(m_);
        done_cv_.wait(g, [&] {
            return job_remaining_.load(std::memory_order_acquire) == 0 &&
                   active_drainers_ == 0;
        });
        // Retire the job's participation budget before releasing m_: a
        // worker that was notified but never woke must not claim a
        // leftover slot for this (finished) generation and then race
        // the next run()'s job setup inside drain().
        worker_slots_ = 0;
        job_fn_ = nullptr;
    }

  private:
    void
    ensureWorkers(int wanted)
    {
        std::lock_guard<std::mutex> g(m_);
        while (static_cast<int>(workers_.size()) < wanted &&
               workers_.size() < 255)
            workers_.emplace_back([this] { workerMain(); });
    }

    void
    workerMain()
    {
        tls_in_worker = true;
        std::uint64_t seen = 0;
        for (;;) {
            {
                std::unique_lock<std::mutex> g(m_);
                cv_.wait(g, [&] { return stop_ || generation_ != seen; });
                if (stop_)
                    return;
                seen = generation_;
                if (worker_slots_ <= 0)
                    continue;
                --worker_slots_;
                ++active_drainers_;
            }
            drain();
            {
                std::lock_guard<std::mutex> g(m_);
                if (--active_drainers_ == 0)
                    done_cv_.notify_all();
            }
        }
    }

    /** Execute chunks until the cursor runs past the job. */
    void
    drain()
    {
        bool was_worker = tls_in_worker;
        tls_in_worker = true;
        for (;;) {
            std::size_t i =
                job_next_.fetch_add(1, std::memory_order_relaxed);
            if (i >= job_tasks_)
                break;
            (*job_fn_)(i);
            if (job_remaining_.fetch_sub(1, std::memory_order_acq_rel) ==
                1) {
                std::lock_guard<std::mutex> g(m_);
                done_cv_.notify_all();
            }
        }
        tls_in_worker = was_worker;
    }

    std::mutex run_mutex_; ///< serializes top-level jobs
    std::mutex m_;
    std::condition_variable cv_, done_cv_;
    std::vector<std::thread> workers_;
    bool stop_ = false;
    std::uint64_t generation_ = 0;
    int worker_slots_ = 0;    ///< participation budget, under m_
    int active_drainers_ = 0; ///< workers inside drain(), under m_

    const std::function<void(std::size_t)> *job_fn_ = nullptr;
    std::size_t job_tasks_ = 0;
    std::atomic<std::size_t> job_next_{0};
    std::atomic<std::size_t> job_remaining_{0};
};

} // namespace

int
maxThreads()
{
    int n = g_thread_override.load(std::memory_order_relaxed);
    if (n > 0)
        return n;
    n = envThreads();
    if (n > 0)
        return n;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

void
setThreads(int n)
{
    g_thread_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

std::size_t
chunkCount(std::size_t n, std::size_t grain)
{
    vqllm_assert(grain > 0, "chunk grain must be positive");
    return (n + grain - 1) / grain;
}

ChunkRange
chunkAt(std::size_t n, std::size_t grain, std::size_t index)
{
    ChunkRange c;
    c.index = index;
    c.begin = index * grain;
    c.end = c.begin + grain < n ? c.begin + grain : n;
    return c;
}

void
parallelFor(std::size_t n, std::size_t grain,
            const std::function<void(const ChunkRange &)> &body)
{
    std::size_t chunks = chunkCount(n, grain);
    if (chunks == 0)
        return;
    ThreadPool::instance().run(chunks, maxThreads(), [&](std::size_t i) {
        body(chunkAt(n, grain, i));
    });
}

} // namespace vqllm::par
