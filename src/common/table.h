/**
 * @file
 * Plain-text table rendering for benchmark harnesses.
 *
 * Every bench binary prints the rows/series of the paper table or figure
 * it reproduces; this helper keeps the output format consistent.
 */
#pragma once

#include <string>
#include <vector>

namespace vqllm {

/** A simple left-aligned text table with a header row. */
class TextTable
{
  public:
    /** @param headers column titles */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render the table with column separators and a rule under header. */
    std::string render() const;

    /** @return number of data rows. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision (fixed notation). */
std::string formatDouble(double value, int precision = 2);

/** Format a byte count with a binary suffix (KiB/MiB/GiB). */
std::string formatBytes(double bytes);

/** Format a ratio as a percentage string, e.g. 0.4613 -> "46.13%". */
std::string formatPercent(double fraction, int precision = 2);

} // namespace vqllm
