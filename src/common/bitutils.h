/**
 * @file
 * Bit-level packing helpers for quantized index streams.
 *
 * VQ algorithms store per-vector codebook indices with arbitrary bit
 * widths (8-bit for 256-entry books, 12-bit for AQLM-style 4096-entry
 * books, 16-bit for QuiP#-style lattice books).  The packer writes indices
 * back-to-back with no alignment padding, exactly like the storage format
 * whose "unaligned 12-bit" decode cost the paper calls out for AQLM-3.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace vqllm {

/** A densely bit-packed stream of fixed-width unsigned integers. */
class BitStream
{
  public:
    /**
     * @param bits_per_value width of each stored value, in [1, 32]
     */
    explicit BitStream(unsigned bits_per_value)
        : bitsPerValue_(bits_per_value)
    {
        vqllm_assert(bits_per_value >= 1 && bits_per_value <= 32,
                     "bits_per_value=", bits_per_value);
    }

    /** Append one value (must fit in bits_per_value bits). */
    void
    push(std::uint32_t value)
    {
        if (bitsPerValue_ < 32) {
            vqllm_assert(value < (1u << bitsPerValue_),
                         "value ", value, " exceeds ", bitsPerValue_,
                         " bits");
        }
        std::size_t bit_pos = count_ * bitsPerValue_;
        std::size_t end_bit = bit_pos + bitsPerValue_;
        if ((end_bit + 7) / 8 > bytes_.size())
            bytes_.resize((end_bit + 7) / 8, 0);
        for (unsigned b = 0; b < bitsPerValue_; ++b) {
            if (value & (1u << b))
                bytes_[(bit_pos + b) / 8] |=
                    static_cast<std::uint8_t>(1u << ((bit_pos + b) % 8));
        }
        ++count_;
    }

    /** @return the i-th stored value. */
    std::uint32_t
    get(std::size_t i) const
    {
        vqllm_assert(i < count_, "index ", i, " out of range ", count_);
        std::size_t bit_pos = i * bitsPerValue_;
        std::uint32_t value = 0;
        for (unsigned b = 0; b < bitsPerValue_; ++b) {
            if (bytes_[(bit_pos + b) / 8] & (1u << ((bit_pos + b) % 8)))
                value |= (1u << b);
        }
        return value;
    }

    /** @return number of stored values. */
    std::size_t size() const { return count_; }

    /** @return storage footprint in bytes (densely packed). */
    std::size_t sizeBytes() const { return bytes_.size(); }

    /** @return width of each value in bits. */
    unsigned bitsPerValue() const { return bitsPerValue_; }

    /**
     * Whether decoding value i requires crossing a 32-bit word boundary.
     * Misaligned reads model the extra unpack/decode instructions that
     * penalize 12-bit AQLM indices on real hardware.
     */
    bool
    crossesWordBoundary(std::size_t i) const
    {
        std::size_t first = i * bitsPerValue_;
        std::size_t last = first + bitsPerValue_ - 1;
        return first / 32 != last / 32;
    }

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

    /**
     * Reconstruct a stream from its raw storage (deserialization).
     *
     * @param bits_per_value width of each value
     * @param count          number of stored values
     * @param bytes          densely packed payload
     */
    static BitStream
    fromBytes(unsigned bits_per_value, std::size_t count,
              std::vector<std::uint8_t> bytes)
    {
        BitStream bs(bits_per_value);
        vqllm_assert(bytes.size() >=
                         (count * bits_per_value + 7) / 8,
                     "payload too short for ", count, " values");
        bs.count_ = count;
        bs.bytes_ = std::move(bytes);
        return bs;
    }

  private:
    unsigned bitsPerValue_;
    std::size_t count_ = 0;
    std::vector<std::uint8_t> bytes_;
};

/** @return ceil(log2(n)) for n >= 1. */
inline unsigned
ceilLog2(std::uint64_t n)
{
    unsigned bits = 0;
    std::uint64_t v = 1;
    while (v < n) {
        v <<= 1;
        ++bits;
    }
    return bits;
}

/** @return smallest multiple of `align` that is >= value. */
inline std::uint64_t
roundUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) / align * align;
}

/** @return ceil(a / b) for b > 0. */
inline std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** @return true iff n is a power of two (n > 0). */
inline bool
isPowerOfTwo(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

} // namespace vqllm
