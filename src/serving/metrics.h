/**
 * @file
 * Serving-level metrics: latency percentiles and throughput counters.
 *
 * The simulator records three latency populations per run — TTFT (time
 * to first token, including queueing and prefill), TBT (time between
 * consecutive output tokens of one request, so preemption stalls appear
 * as TBT outliers) and request end-to-end latency — plus the counters a
 * capacity planner needs: sustained tokens/sec, the KV high-water mark,
 * preemptions, and codebook residency hit rate.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vqllm::obs {
class Counter;
class Histogram;
class MetricsRegistry;
}

namespace vqllm::serving {

/** Summary statistics of one latency population (microseconds). */
struct LatencyStats
{
    std::size_t count = 0;
    double mean_us = 0;
    double p50_us = 0;
    double p95_us = 0;
    double p99_us = 0;
    double max_us = 0;
};

/**
 * Percentile by linear interpolation between closest ranks.
 *
 * @param sorted ascending samples (empty returns 0)
 * @param q      quantile in [0, 1]
 */
double percentile(const std::vector<double> &sorted, double q);

/** Summarize a latency population (sorts a copy; empty input → zeros). */
LatencyStats summarize(std::vector<double> samples);

/**
 * Accumulator the simulator feeds while the clock advances.
 *
 * Given a MetricsRegistry the collector additionally streams every
 * sample into live registry instruments (`serving.latency.*`
 * histograms, `serving.tokens.*` / `serving.preemptions` counters);
 * without one it is exactly the plain sample buffer it always was.
 */
class MetricsCollector
{
  public:
    explicit MetricsCollector(obs::MetricsRegistry *registry = nullptr);

    void recordTtft(double us);
    void recordTbt(double us);
    void recordE2e(double us);
    void recordDecodeTokens(std::uint64_t n);
    void recordPrefillTokens(std::uint64_t n);
    void recordPreemption();

    const std::vector<double> &ttftSamples() const { return ttft_us_; }
    const std::vector<double> &tbtSamples() const { return tbt_us_; }
    const std::vector<double> &e2eSamples() const { return e2e_us_; }
    std::uint64_t decodeTokens() const { return decode_tokens_; }
    std::uint64_t prefillTokens() const { return prefill_tokens_; }
    std::uint64_t preemptions() const { return preemptions_; }

  private:
    std::vector<double> ttft_us_;
    std::vector<double> tbt_us_;
    std::vector<double> e2e_us_;
    std::uint64_t decode_tokens_ = 0;
    std::uint64_t prefill_tokens_ = 0;
    std::uint64_t preemptions_ = 0;

    // Registry instruments (nullptr when no registry was given);
    // resolved once at construction so record paths stay O(1).
    obs::Histogram *h_ttft_ = nullptr;
    obs::Histogram *h_tbt_ = nullptr;
    obs::Histogram *h_e2e_ = nullptr;
    obs::Counter *c_decode_tokens_ = nullptr;
    obs::Counter *c_prefill_tokens_ = nullptr;
    obs::Counter *c_preemptions_ = nullptr;
};

/** Per-device view of one tensor-parallel serving run. */
struct ShardReport
{
    /** KV high-water mark on this device, bytes. */
    std::uint64_t kv_peak_bytes = 0;
    /** KV capacity of this device's pool, bytes. */
    std::uint64_t kv_capacity_bytes = 0;
    /** Plan-cache lookups this shard's pricing performed (per-shard
     *  delta; shards sharing one engine attribute correctly because
     *  pricing is sequential within a run). */
    std::uint64_t plan_cache_hits = 0;
    std::uint64_t plan_cache_misses = 0;

    /** @return peak KV occupancy of this device ([0,1]). */
    double
    kvPeakFraction() const
    {
        return kv_capacity_bytes > 0
                   ? static_cast<double>(kv_peak_bytes) /
                         static_cast<double>(kv_capacity_bytes)
                   : 0.0;
    }
};

/** Final report of one serving simulation. */
struct ServingReport
{
    LatencyStats ttft;
    LatencyStats tbt;
    LatencyStats e2e;

    /** Simulated makespan (last event timestamp), microseconds. */
    double sim_time_us = 0;
    /** Time the GPU spent executing iterations, microseconds — the
     *  makespan minus idle fast-forward gaps between arrivals. */
    double busy_time_us = 0;
    /** busy_time_us / sim_time_us ([0,1]). */
    double utilization = 0;
    /** Decode tokens emitted per *busy* second (idle gaps at low QPS
     *  would otherwise underreport the served throughput). */
    double tokens_per_sec = 0;
    std::uint64_t completed_requests = 0;
    std::uint64_t rejected_requests = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t decode_tokens = 0;
    std::uint64_t prefill_tokens = 0;
    /** Scheduler iterations executed. */
    std::uint64_t iterations = 0;

    /** Tensor-parallel degree of the run (1 = single GPU). */
    std::uint64_t tp_degree = 1;
    /** Ring all-reduce time summed over the run, microseconds (0 at
     *  degree 1). */
    double comm_us = 0;
    /** Collective share of busy time ([0,1]; 0 at degree 1). */
    double comm_fraction = 0;

    // Busy-time breakdown: prefill + decode + comm + codebook_upload
    // partitions busy_time_us (each iteration's price is the sum of
    // exactly these four components).
    /** Prefill compute summed over the run, microseconds. */
    double prefill_us = 0;
    /** Decode compute summed over the run, microseconds. */
    double decode_us = 0;
    /** Codebook upload (residency misses) summed, microseconds. */
    double codebook_upload_us = 0;
    /** Per-device KV occupancy and plan-cache deltas (one entry per
     *  shard; a single entry at degree 1). */
    std::vector<ShardReport> shards;

    /** KV-cache high-water mark, bytes (summed over shards). */
    std::uint64_t kv_peak_bytes = 0;
    /** Aggregate KV capacity, bytes (summed over shards). */
    std::uint64_t kv_capacity_bytes = 0;
    /** Codebook residency hit rate over the run ([0,1]; 1 when the
     *  scheme has no codebooks). */
    double codebook_hit_rate = 1.0;

    /** compiler::Engine plan-cache lookups observed by this run (the
     *  delta across the run; see SimulatorConfig::engine for sharing
     *  caveats).  Zero lookups for schemes that never compile VQ
     *  kernels (FP16/EWQ price closed-form). */
    std::uint64_t plan_cache_hits = 0;
    std::uint64_t plan_cache_misses = 0;
    std::uint64_t plan_cache_evictions = 0;

    // Cross-request prefix caching (SimulatorConfig::prefix_cache).
    // The fields below stay at their defaults — and out of json() /
    // summary() — when the cache is off, keeping cache-off reports
    // bit-identical to pre-cache builds.
    /** True when the run served with the prefix cache enabled. */
    bool prefix_cache_enabled = false;
    /** Prefix-bearing prompts matched against the index. */
    std::uint64_t prefix_lookups = 0;
    /** Lookups that attached at least one cached block. */
    std::uint64_t prefix_hits = 0;
    /** Prompt tokens served from cache instead of prefill — the
     *  prefill compute the cache saved. */
    std::uint64_t prefix_matched_tokens = 0;
    /** Cached blocks evicted (LFU capacity plus pool-pressure
     *  reclaim). */
    std::uint64_t prefix_evicted_blocks = 0;
    /** Cached blocks resident at end of run (per shard). */
    std::uint64_t prefix_cached_blocks = 0;
    /** Copy-on-write forks: writes into a shared tail block's slack
     *  that privatized it first. */
    std::uint64_t cow_forks = 0;
    /** Matched tokens over total prefill demand (matched + actually
     *  prefilled), [0,1]. */
    double prefix_hit_rate = 0;

    // KV storage scheme (SimulatorConfig::kv_scheme).  Like the prefix
    // section above, the JSON/summary section only appears when the
    // resolved KV scheme is not FP16 — FP16-KV reports stay
    // bit-identical to pre-KvScheme builds.  The struct fields are
    // populated for every run.
    /** CLI/JSON token of the resolved KV scheme ("fp16", "int4",
     *  "vq4", "vq2"). */
    std::string kv_scheme = "fp16";
    /** KV bytes one cached token occupies across the decoder stack
     *  under the KV scheme (summed over shards). */
    std::uint64_t kv_bytes_per_token = 0;
    /** Resident-token capacity multiplier vs FP16 KV at equal pool
     *  bytes (FP16 bytes/token over the scheme's bytes/token). */
    double kv_capacity_multiplier = 1.0;
    /** Signed decode-attention delta attributable to the KV scheme
     *  over the run, microseconds: dequant/codebook cost minus the
     *  HBM savings of reading fewer KV bytes (usually negative —
     *  compression speeds attention up).  Attribution only: already
     *  contained in decode_us; exactly 0 under FP16 KV. */
    double kv_dequant_us = 0;
    /** Peak concurrently running (prefilling or decoding) sequences
     *  over the run's iterations. */
    std::uint64_t peak_running_seqs = 0;

    /** @return plan-cache hit rate ([0,1]; 1 when nothing compiled). */
    double
    planCacheHitRate() const
    {
        std::uint64_t lookups = plan_cache_hits + plan_cache_misses;
        return lookups > 0 ? static_cast<double>(plan_cache_hits) /
                                 static_cast<double>(lookups)
                           : 1.0;
    }

    /** @return multi-line human-readable summary. */
    std::string summary() const;

    /**
     * @return the full report as a deterministic JSON object: every
     * scalar field, the busy-time breakdown and the per-shard views.
     * Doubles print with %.17g (round-trip exact), so two reports
     * serialize identically iff they are bit-identical — the property
     * the tracing-off parity tests key on.
     */
    std::string json() const;
};

} // namespace vqllm::serving
