#include "serving/scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "llm/e2e.h"
#include "llm/ops.h"

namespace vqllm::serving {

Scheduler::Scheduler(const SchedulerConfig &cfg, KvBlockPool &pool)
    : cfg_(cfg), pool_(pool)
{
    vqllm_assert(cfg_.max_batch > 0, "max_batch must be positive");
}

void
Scheduler::submit(Request *r)
{
    if (!pool_.canEverFit(r->prompt_len + r->max_new_tokens)) {
        r->state = RequestState::Rejected;
        ++rejected_;
        return;
    }
    r->state = RequestState::Waiting;
    requeue(r);
}

void
Scheduler::requeue(Request *r)
{
    // Keep the waiting queue arrival-ordered so preempted requests
    // (older arrivals) are re-admitted ahead of younger ones.
    auto pos = std::lower_bound(waiting_.begin(), waiting_.end(), r,
                                [](const Request *a, const Request *b) {
                                    return a->arrival_us < b->arrival_us;
                                });
    waiting_.insert(pos, r);
}

void
Scheduler::preempt(Request *r)
{
    pool_.freeSequence(r->id);
    r->state = RequestState::Preempted;
    ++r->preemptions;
    requeue(r);
}

Scheduler::Iteration
Scheduler::next()
{
    Iteration it;

    // ---- Prefill-prioritized admission, strict arrival order.  Stop
    // at the first request that does not fit (no hole-skipping: FCFS).
    std::size_t prefill_tokens = 0;
    while (!waiting_.empty() &&
           running_.size() + it.prefill.size() < cfg_.max_batch) {
        Request *r = waiting_.front();
        std::size_t ctx = r->contextTokens();
        if (!it.prefill.empty() &&
            prefill_tokens + ctx > cfg_.max_prefill_tokens)
            break;
        if (!pool_.allocSequence(r->id, ctx))
            break;
        waiting_.pop_front();
        prefill_tokens += ctx;
        it.prefill.push_back(r);
    }
    if (!it.prefill.empty()) {
        for (Request *r : it.prefill) {
            r->state = RequestState::Running;
            running_.push_back(r);
        }
        // Running set stays arrival-ordered: re-admitted preempted
        // requests may be older than current members.
        std::sort(running_.begin(), running_.end(),
                  [](const Request *a, const Request *b) {
                      return a->arrival_us < b->arrival_us;
                  });
        return it;
    }

    // ---- Decode: one token for every running sequence.  A sequence
    // that cannot take a block preempts from the back of the running
    // set (latest arrival) until its append succeeds or it preempts
    // itself.
    std::size_t i = 0;
    while (i < running_.size()) {
        Request *r = running_[i];
        bool ok = pool_.appendToken(r->id);
        while (!ok) {
            Request *victim = running_.back();
            running_.pop_back();
            preempt(victim);
            ++it.preempted;
            if (victim == r)
                break;
            ok = pool_.appendToken(r->id);
        }
        if (!ok)
            continue; // r preempted itself; it was the tail, loop ends
        it.decode.push_back(r);
        ++i;
    }
    return it;
}

void
Scheduler::retire(Request *r)
{
    pool_.freeSequence(r->id);
    r->state = RequestState::Finished;
    auto pos = std::find(running_.begin(), running_.end(), r);
    if (pos != running_.end())
        running_.erase(pos);
}

// ---------------------------------------------------------------------
// IterationPricer

IterationPricer::IterationPricer(const gpusim::GpuSpec &spec,
                                 const llm::LlamaConfig &model,
                                 llm::QuantScheme scheme,
                                 const PricerConfig &cfg)
    : spec_(spec), model_(model), scheme_(scheme), cfg_(cfg)
{
    vqllm_assert(cfg_.seq_bucket > 0, "seq_bucket must be positive");
}

double
IterationPricer::prefillUs(std::size_t prompt_tokens)
{
    // Bucket prompts for memoization; prefill cost is smooth in length.
    std::size_t bucket =
        ((prompt_tokens + cfg_.seq_bucket - 1) / cfg_.seq_bucket) *
        cfg_.seq_bucket;
    auto memo = prefill_memo_.find(bucket);
    if (memo != prefill_memo_.end())
        return memo->second;

    double us = llm::estimatePrefillUs(spec_, model_, 1, bucket);
    prefill_memo_[bucket] = us;
    return us;
}

double
IterationPricer::decodeLinearUs(std::size_t batch)
{
    auto memo = linear_memo_.find(batch);
    if (memo != linear_memo_.end())
        return memo->second;
    double us = 0;
    for (auto [n, k] : model_.layerLinearShapes()) {
        engine::GemmShape shape{batch, n, k};
        us += llm::schemeLinearUs(spec_, scheme_, shape);
    }
    linear_memo_[batch] = us;
    return us;
}

double
IterationPricer::decodeAttnUs(std::size_t batch, std::size_t seq_bucket)
{
    auto key = std::make_pair(batch, seq_bucket);
    auto memo = attn_memo_.find(key);
    if (memo != attn_memo_.end())
        return memo->second;
    double us = llm::schemeAttentionUs(
        spec_, scheme_, model_.attnShape(batch, seq_bucket));
    attn_memo_[key] = us;
    return us;
}

double
IterationPricer::decodeUs(const std::vector<Request *> &batch)
{
    if (batch.empty())
        return 0;

    // Attention over a ragged batch: group sequences into context
    // buckets and price one homogeneous sub-launch per bucket
    // (flash-decoding style).
    std::map<std::size_t, std::size_t> bucket_counts;
    for (const Request *r : batch) {
        std::size_t ctx = std::max<std::size_t>(r->contextTokens(), 1);
        std::size_t bucket =
            ((ctx + cfg_.seq_bucket - 1) / cfg_.seq_bucket) *
            cfg_.seq_bucket;
        ++bucket_counts[bucket];
    }
    double attn_us = 0;
    for (auto [bucket, count] : bucket_counts)
        attn_us += decodeAttnUs(count, bucket);

    std::size_t n = batch.size();
    auto elem_memo = elem_memo_.find(n);
    double elem_us;
    if (elem_memo != elem_memo_.end()) {
        elem_us = elem_memo->second;
    } else {
        elem_us = llm::elementwiseLayerLatencyUs(spec_, n, model_.hidden);
        elem_memo_[n] = elem_us;
    }

    double layers = static_cast<double>(model_.layers);
    return (decodeLinearUs(n) + elem_us + attn_us) * layers;
}

std::uint64_t
IterationPricer::codebookGroupBytes() const
{
    if (scheme_ != llm::QuantScheme::VQ4 &&
        scheme_ != llm::QuantScheme::VQ2)
        return 0;
    const vq::VQConfig kv_cfg = llm::schemeVqConfigs(scheme_).second;
    // Per-channel-group scope: one codebook per vector_size channels of
    // the flattened KV heads, per layer, for K and V.
    std::uint64_t channels = model_.kvHeads() * model_.head_dim;
    std::uint64_t books_per_layer =
        2 * (channels + kv_cfg.vector_size - 1) / kv_cfg.vector_size;
    return books_per_layer * model_.layers * kv_cfg.codebookBytes();
}

double
IterationPricer::codebookMissUs(std::size_t misses) const
{
    if (misses == 0)
        return 0;
    std::uint64_t bytes = codebookGroupBytes();
    if (bytes == 0)
        return 0;
    double per_upload_us =
        static_cast<double>(bytes) / (cfg_.upload_gbps * 1e9) * 1e6 +
        cfg_.upload_fixed_us;
    return per_upload_us * static_cast<double>(misses);
}

} // namespace vqllm::serving
