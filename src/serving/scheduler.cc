#include "serving/scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "compiler/engine.h"
#include "llm/e2e.h"
#include "llm/ops.h"
#include "obs/trace.h"
#include "serving/prefix_cache.h"

namespace vqllm::serving {

namespace {

/**
 * Largest prompt slice processable given the chunk budget and `avail`
 * free KV token slots.  A slice that completes the prefill needs one
 * extra slot for the token it emits; when that slot cannot be afforded
 * the slice shrinks and the prefill completes in a later iteration.
 */
std::size_t
sliceTokens(std::size_t remaining, std::size_t budget, std::size_t avail)
{
    std::size_t take = std::min(budget, remaining);
    std::size_t need = take + (take == remaining ? 1 : 0);
    if (need <= avail)
        return take;
    if (avail == 0)
        return 0;
    take = std::min(take, avail);
    if (take == remaining)
        --take;
    return take;
}

} // namespace

Scheduler::Scheduler(const SchedulerConfig &cfg, ShardedKvPool &pool)
    : cfg_(cfg), pool_(pool), policy_(makePolicy(cfg.policy))
{
    vqllm_assert(cfg_.max_batch > 0, "max_batch must be positive");
}

void
Scheduler::submit(Request *r)
{
    // Peak residency is the full context plus, for a request with no
    // decode budget, the slot of the token its prefill emits.
    std::size_t peak =
        r->prompt_len + std::max<std::size_t>(r->max_new_tokens, 1);
    if (!pool_.canEverFit(peak)) {
        r->state = RequestState::Rejected;
        ++rejected_;
        if (trace_ != nullptr)
            trace_->instant(
                "reject", "sched", 0, trace_->now(),
                {{"req", static_cast<double>(r->id)},
                 {"peak_tokens", static_cast<double>(peak)}});
        return;
    }
    r->state = RequestState::Waiting;
    r->prefilled_tokens = 0;
    r->prefill_complete = false;
    requeue(r);
}

void
Scheduler::requeue(Request *r)
{
    // Keep the waiting queue in policy admission order by insertion.
    // Admission keys are static while a request waits — arrival,
    // priority, and the EDF deadline (arrival + TTFT deadline before
    // the first token, last_token + TBT deadline after) only change
    // while a request runs — so the order never goes stale between
    // insertions.  admitBefore is total (id tiebreak), making the
    // position, and thus batch formation, deterministic.
    auto pos = std::lower_bound(waiting_.begin(), waiting_.end(), r,
                                [this](const Request *a,
                                       const Request *b) {
                                    return policy_->admitBefore(*a, *b);
                                });
    waiting_.insert(pos, r);
}

void
Scheduler::preempt(Request *r)
{
    if (trace_ != nullptr)
        trace_->instant(
            "preempt", "sched", 0, trace_->now(),
            {{"req", static_cast<double>(r->id)},
             {"held_tokens",
              static_cast<double>(r->prefilled_tokens)}});
    pool_.freeSequence(r->id);
    if (prefix_cache_ != nullptr)
        prefix_cache_->onRelease(r->id);
    r->state = RequestState::Preempted;
    r->prefilled_tokens = 0;
    r->prefill_complete = false;
    ++r->preemptions;
    requeue(r);
}

std::size_t
Scheduler::victimIndex(const Iteration &it) const
{
    // Policy-worst running request among those that have not decoded
    // this iteration — a sequence whose token was already scheduled
    // must keep its blocks until the iteration lands.
    std::size_t v = running_.size();
    for (std::size_t j = 0; j < running_.size(); ++j) {
        Request *c = running_[j];
        if (std::find(it.decode.begin(), it.decode.end(), c) !=
            it.decode.end())
            continue;
        if (v == running_.size() ||
            policy_->evictBefore(*c, *running_[v]))
            v = j;
    }
    vqllm_assert(v < running_.size(), "no preemption victim available");
    return v;
}

void
Scheduler::decodeStep(Iteration &it)
{
    // One token for every fully-prefilled running sequence.  A sequence
    // that cannot take a block evicts the policy victim until its
    // append succeeds or it preempts itself.  Decoded sequences are
    // eviction-protected for the rest of the iteration, so visit them
    // most-protected-first (reverse eviction order): when pressure
    // hits, the not-yet-decoded tail still holds the policy's
    // preferred victims — a high-priority sequence must never
    // self-preempt because a protected low-priority one decoded ahead
    // of it.
    std::vector<Request *> order;
    for (Request *r : running_)
        if (r->prefill_complete)
            order.push_back(r);
    std::stable_sort(order.begin(), order.end(),
                     [this](const Request *a, const Request *b) {
                         return policy_->evictBefore(*b, *a);
                     });
    for (Request *r : order) {
        if (r->state != RequestState::Running)
            continue; // fell victim to an earlier sequence's pressure
        bool ok = pool_.appendToken(r->id);
        while (!ok) {
            std::size_t v = victimIndex(it);
            Request *victim = running_[v];
            running_.erase(running_.begin() + v);
            preempt(victim);
            ++it.preempted;
            if (victim == r)
                break;
            ok = pool_.appendToken(r->id);
        }
        if (!ok)
            continue; // r preempted itself
        ++r->prefilled_tokens;
        it.decode.push_back(r);
    }
}

void
Scheduler::prefillChunks(Iteration &it)
{
    std::size_t budget = cfg_.chunk_tokens;

    // ---- Continue in-flight (partially prefilled) sequences in
    // policy admission order.
    std::vector<Request *> inflight;
    for (Request *r : running_)
        if (!r->prefill_complete)
            inflight.push_back(r);
    std::stable_sort(inflight.begin(), inflight.end(),
                     [this](const Request *a, const Request *b) {
                         return policy_->admitBefore(*a, *b);
                     });
    for (Request *r : inflight) {
        if (budget == 0)
            break;
        std::size_t remaining = r->contextTokens() - r->prefilled_tokens;
        std::size_t take = sliceTokens(remaining, budget,
                                       pool_.extendableTokens(r->id));
        if (take == 0)
            continue; // blocked on KV; nextChunked may evict for it
        bool last = take == remaining;
        bool ok = pool_.extendSequence(r->id, take + (last ? 1 : 0));
        vqllm_assert(ok, "sized prefill slice must extend");
        it.prefill.push_back({r, take, r->prefilled_tokens, last});
        r->prefilled_tokens += take + (last ? 1 : 0);
        r->prefill_complete = last;
        budget -= take;
        if (prefix_cache_ != nullptr)
            prefix_cache_->onPrefillAdvance(*r);
    }

    // ---- Admit new requests in policy order.  Stop at the first that
    // cannot take a slice (no hole-skipping).
    while (budget > 0 && !waiting_.empty() &&
           running_.size() < cfg_.max_batch) {
        Request *r = waiting_.front();
        if (r->kv_imported)
            break; // KV-blocked import head; admitImported retries it
        std::size_t target = r->contextTokens();
        PrefixCache::Match m;
        if (prefix_cache_ != nullptr)
            m = prefix_cache_->match(*r);
        std::size_t take;
        bool last;
        if (m.tokens > 0) {
            // Prefix hit: map the matched blocks in as shared blocks
            // and prefill only the unmatched suffix.  The slice starts
            // against `m.tokens` of resident context, so the pricer
            // charges the suffix alone.
            prefix_cache_->attach(*r, m);
            std::size_t remaining = target - m.tokens;
            take = sliceTokens(remaining, budget,
                               pool_.extendableTokens(r->id));
            if (take == 0) {
                // Not admissible after all (KV pressure on the
                // suffix); undo so the hit statistics stay honest and
                // the request re-matches when capacity frees up.
                prefix_cache_->rollbackAttach(*r, m);
                break;
            }
            last = take == remaining;
            bool ok = pool_.extendSequence(r->id, take + (last ? 1 : 0));
            vqllm_assert(ok, "sized prefill slice must extend");
        } else {
            take = sliceTokens(target, budget, pool_.freeTokens());
            if (take == 0)
                break;
            last = take == target;
            bool ok = pool_.allocSequence(r->id, take + (last ? 1 : 0));
            vqllm_assert(ok, "sized prefill slice must allocate");
        }
        waiting_.erase(waiting_.begin());
        r->state = RequestState::Running;
        r->prefilled_tokens = m.tokens + take + (last ? 1 : 0);
        r->prefill_complete = last;
        running_.push_back(r);
        it.prefill.push_back({r, take, m.tokens, last});
        budget -= take;
        if (prefix_cache_ != nullptr)
            prefix_cache_->onPrefillAdvance(*r);
    }
}

Scheduler::Iteration
Scheduler::nextUnchunked()
{
    Iteration it;

    // ---- Prefill-prioritized admission in policy order.  Stop at the
    // first request that does not fit (no hole-skipping).
    std::size_t prefill_tokens = 0;
    while (!waiting_.empty() && running_.size() < cfg_.max_batch) {
        Request *r = waiting_.front();
        if (r->kv_imported)
            break; // KV-blocked import head; admitImported retries it
        std::size_t ctx = r->contextTokens();
        PrefixCache::Match m;
        if (prefix_cache_ != nullptr)
            m = prefix_cache_->match(*r);
        // The iteration's prompt-token budget covers what is actually
        // prefilled: the unmatched suffix.
        std::size_t slice = ctx - m.tokens;
        if (!it.prefill.empty() &&
            prefill_tokens + slice > cfg_.max_prefill_tokens)
            break;
        if (m.tokens > 0) {
            // Prefix hit: shared blocks for the match, fresh blocks
            // for the suffix plus the emitted token's slot.
            prefix_cache_->attach(*r, m);
            if (!pool_.extendSequence(r->id, slice + 1)) {
                prefix_cache_->rollbackAttach(*r, m);
                break;
            }
        } else if (!pool_.allocSequence(r->id, ctx + 1)) {
            // Whole-prompt slice plus the slot of the token it emits.
            break;
        }
        waiting_.erase(waiting_.begin());
        r->state = RequestState::Running;
        r->prefilled_tokens = ctx + 1;
        r->prefill_complete = true;
        running_.push_back(r);
        it.prefill.push_back({r, slice, m.tokens, true});
        prefill_tokens += slice;
        if (prefix_cache_ != nullptr)
            prefix_cache_->onPrefillAdvance(*r);
    }
    if (!it.prefill.empty())
        return it;

    decodeStep(it);
    return it;
}

Scheduler::Iteration
Scheduler::nextChunked()
{
    Iteration it;
    decodeStep(it);
    for (;;) {
        prefillChunks(it);
        if (!it.empty() || running_.empty())
            return it;
        // Every running sequence is mid-prefill and blocked on KV
        // capacity: evict the policy victim and retry, so the oldest
        // prefill can make progress.
        std::size_t v = victimIndex(it);
        Request *victim = running_[v];
        running_.erase(running_.begin() + v);
        preempt(victim);
        ++it.preempted;
    }
}

void
Scheduler::admitImported()
{
    // Admit requests whose KV cache arrived from another replica (a
    // fleet prefill→decode handoff): the full context maps in with no
    // prefill compute and the sequence is decode-eligible immediately.
    // Same no-hole-skipping discipline as prefill admission — only the
    // policy head admits, and a head blocked on KV capacity waits for
    // decode pressure to free blocks (or for preemption to strike).
    while (!waiting_.empty() && running_.size() < cfg_.max_batch) {
        Request *r = waiting_.front();
        if (!r->kv_imported)
            break;
        std::size_t ctx = r->contextTokens();
        if (!pool_.allocSequence(r->id, ctx))
            break; // blocked on KV; retiring sequences free blocks
        waiting_.erase(waiting_.begin());
        r->state = RequestState::Running;
        r->prefilled_tokens = ctx;
        r->prefill_complete = true;
        // Cleared so a later preemption recomputes locally like any
        // other sequence instead of waiting for a second import.
        r->kv_imported = false;
        running_.push_back(r);
        if (trace_ != nullptr)
            trace_->instant(
                "kv_import", "sched", 0, trace_->now(),
                {{"req", static_cast<double>(r->id)},
                 {"tokens", static_cast<double>(ctx)}});
    }
}

Scheduler::Iteration
Scheduler::next()
{
    admitImported();
    if (cfg_.chunk_tokens == 0)
        return nextUnchunked();
    return nextChunked();
}

void
Scheduler::retire(Request *r)
{
    pool_.freeSequence(r->id);
    if (prefix_cache_ != nullptr)
        prefix_cache_->onRelease(r->id);
    r->state = RequestState::Finished;
    r->prefilled_tokens = 0;
    auto pos = std::find(running_.begin(), running_.end(), r);
    if (pos != running_.end())
        running_.erase(pos);
}

// ---------------------------------------------------------------------
// IterationPricer

IterationPricer::IterationPricer(compiler::Engine &eng,
                                 const llm::LlamaConfig &model,
                                 llm::QuantScheme scheme,
                                 const PricerConfig &cfg)
    : IterationPricer(std::vector<compiler::Engine *>{&eng}, model,
                      scheme, llm::TpConfig{}, cfg)
{
}

IterationPricer::IterationPricer(std::vector<compiler::Engine *> engines,
                                 const llm::LlamaConfig &model,
                                 llm::QuantScheme scheme,
                                 const llm::TpConfig &tp,
                                 const PricerConfig &cfg)
    : IterationPricer(std::move(engines), model, scheme,
                      llm::defaultKvScheme(scheme), tp, cfg)
{
}

IterationPricer::IterationPricer(std::vector<compiler::Engine *> engines,
                                 const llm::LlamaConfig &model,
                                 llm::QuantScheme scheme,
                                 llm::KvScheme kv, const llm::TpConfig &tp,
                                 const PricerConfig &cfg)
    : engines_(std::move(engines)), spec_(engines_.front()->spec()),
      model_(model), scheme_(scheme), kv_scheme_(kv), tp_(tp), cfg_(cfg),
      shard_deltas_(engines_.size())
{
    vqllm_assert(cfg_.seq_bucket > 0, "seq_bucket must be positive");
    vqllm_assert(tp_.degree >= 1, "TP degree must be >= 1");
    vqllm_assert(engines_.size() == static_cast<std::size_t>(tp_.degree),
                 "one engine per TP shard required");
    vqllm_assert(model_.heads % tp_.degree == 0,
                 "heads must divide evenly across TP ranks");
    vqllm_assert(model_.kvHeads() >=
                     static_cast<std::size_t>(tp_.degree),
                 "TP degree exceeds the model's KV heads");
    for (compiler::Engine *eng : engines_)
        vqllm_assert(eng != nullptr, "null shard engine");
}

double
IterationPricer::prefillChunkUs(std::size_t tokens, std::size_t context)
{
    // Bucket both dimensions for memoization; chunk cost is smooth in
    // slice length and context.  Slices below one seq_bucket get a
    // finer granularity — budget sharing routinely produces small
    // leftover slices, and charging each a whole bucket of phantom
    // tokens would systematically overprice the chunked regime.
    auto bucketTo = [](std::size_t n, std::size_t b) {
        return ((n + b - 1) / b) * b;
    };
    std::size_t fine =
        std::min<std::size_t>(32, std::max<std::size_t>(cfg_.seq_bucket / 8, 1));
    tokens = std::max<std::size_t>(tokens, 1);
    auto key = std::make_pair(tokens < cfg_.seq_bucket
                                  ? bucketTo(tokens, fine)
                                  : bucketTo(tokens, cfg_.seq_bucket),
                              context == 0
                                  ? 0
                                  : bucketTo(context, cfg_.seq_bucket));
    auto memo = prefill_memo_.find(key);
    if (memo != prefill_memo_.end())
        return memo->second;

    double us = llm::estimateChunkedPrefillUs(spec_, model_, key.first,
                                              key.second, tp_);
    prefill_memo_[key] = us;
    return us;
}

double
IterationPricer::prefillCommUs(std::size_t tokens) const
{
    return llm::layerAllReduceUs(tp_, tokens, model_.hidden) *
           static_cast<double>(model_.layers);
}

double
IterationPricer::decodeLinearUs(compiler::Engine &eng, std::size_t shard,
                                std::size_t batch)
{
    // No pricer-side memo: the engine's plan cache memoizes the VQ
    // kernel compiles, so repeated batch sizes are cache hits there
    // (and the FP16/EWQ closed forms are cheap enough to re-evaluate).
    double us = 0;
    std::size_t degree = static_cast<std::size_t>(tp_.degree);
    for (auto [n, k] : llm::shardLinearShapes(model_, degree, shard)) {
        engine::GemmShape shape{batch, n, k};
        us += llm::schemeLinearUs(eng, scheme_, shape);
    }
    return us;
}

double
IterationPricer::decodeAttnUs(compiler::Engine &eng, std::size_t shard,
                              std::size_t batch, std::size_t seq_bucket)
{
    return llm::kvSchemeAttentionUs(
        eng, kv_scheme_,
        llm::shardAttnShape(model_, batch, seq_bucket,
                            static_cast<std::size_t>(tp_.degree), shard));
}

double
IterationPricer::decodeUs(const std::vector<Request *> &batch)
{
    if (batch.empty())
        return 0;

    // Attention over a ragged batch: group sequences into context
    // buckets and price one homogeneous sub-launch per bucket
    // (flash-decoding style).
    std::map<std::size_t, std::size_t> bucket_counts;
    for (const Request *r : batch) {
        std::size_t ctx = std::max<std::size_t>(r->contextTokens(), 1);
        std::size_t bucket =
            ((ctx + cfg_.seq_bucket - 1) / cfg_.seq_bucket) *
            cfg_.seq_bucket;
        ++bucket_counts[bucket];
    }

    std::size_t n = batch.size();
    auto elem_memo = elem_memo_.find(n);
    double elem_us;
    if (elem_memo != elem_memo_.end()) {
        elem_us = elem_memo->second;
    } else {
        elem_us = llm::elementwiseLayerLatencyUs(spec_, n, model_.hidden);
        elem_memo_[n] = elem_us;
    }

    // All shards launch in lockstep; the slowest (widest) shard sets
    // the step latency.  Element-wise ops run replicated on the full
    // hidden width on every shard.
    double layers = static_cast<double>(model_.layers);
    double step_us = 0;
    double attn0_us = 0;
    for (std::size_t s = 0; s < engines_.size(); ++s) {
        compiler::Engine &eng = *engines_[s];
        const compiler::CacheStats before = eng.stats();
        double attn_us = 0;
        for (auto [bucket, count] : bucket_counts)
            attn_us += decodeAttnUs(eng, s, count, bucket);
        if (s == 0)
            attn0_us = attn_us;
        double shard_us = decodeLinearUs(eng, s, n) + elem_us + attn_us;
        const compiler::CacheStats after = eng.stats();
        shard_deltas_[s].plan_cache_hits += after.hits - before.hits;
        shard_deltas_[s].plan_cache_misses += after.misses - before.misses;
        if (collect_detail_)
            last_detail_.shard_compute_us.push_back(shard_us * layers);
        step_us = std::max(step_us, shard_us);
    }

    // KV-dequant attribution: what the same bucketed attention
    // sub-launches would cost with uncompressed FP16 KV (closed form,
    // no engine cache traffic), on the critical shard 0 geometry.
    // Pure accounting — the time itself is already inside decode_us.
    if (kv_scheme_ != llm::KvScheme::FP16) {
        double fp16_us = 0;
        for (auto [bucket, count] : bucket_counts)
            fp16_us += llm::kvSchemeAttentionUs(
                *engines_[0], llm::KvScheme::FP16,
                llm::shardAttnShape(model_, count, bucket,
                                    static_cast<std::size_t>(tp_.degree),
                                    0));
        kv_dequant_us_ += (attn0_us - fp16_us) * layers;
    }

    // Two ring all-reduces per layer gather the attention output and
    // reduce the MLP partials (0 at degree 1).
    double comm_us =
        llm::layerAllReduceUs(tp_, n, model_.hidden) * layers;
    comm_us_ += comm_us;
    last_breakdown_.decode_us += step_us * layers;
    last_breakdown_.comm_us += comm_us;
    totals_.decode_us += step_us * layers;
    if (collect_detail_) {
        last_detail_.decode_comm_us += comm_us;
        last_detail_.decode_batch = n;
    }
    return step_us * layers + comm_us;
}

double
IterationPricer::iterationUs(const Scheduler::Iteration &it)
{
    // One serialized launch set: every prefill slice's GEMMs plus the
    // decode batch's bucketed attention sub-launches, plus (degree > 1)
    // each slice's per-layer collectives.
    last_breakdown_ = Breakdown{};
    last_detail_ = IterationDetail{};
    double us = 0;
    for (const auto &chunk : it.prefill) {
        double chunk_us = prefillChunkUs(chunk.tokens, chunk.context);
        us += chunk_us;
        last_breakdown_.prefill_us += chunk_us;
        totals_.prefill_us += chunk_us;
        if (collect_detail_)
            last_detail_.chunks.push_back({chunk.req->id, chunk.tokens,
                                           chunk.context, chunk.last,
                                           chunk_us});
        double comm_us = prefillCommUs(chunk.tokens);
        comm_us_ += comm_us;
        last_breakdown_.comm_us += comm_us;
        us += comm_us;
    }
    if (!it.decode.empty())
        us += decodeUs(it.decode);
    return us;
}

std::uint64_t
IterationPricer::codebookGroupBytes() const
{
    if (kv_scheme_ != llm::KvScheme::VQ4 &&
        kv_scheme_ != llm::KvScheme::VQ2)
        return 0;
    const vq::VQConfig kv_cfg = llm::kvSchemeVqConfig(kv_scheme_);
    // Per-channel-group scope: one codebook per vector_size channels of
    // the flattened KV heads, per layer, for K and V.
    std::uint64_t channels = model_.kvHeads() * model_.head_dim;
    std::uint64_t books_per_layer =
        2 * (channels + kv_cfg.vector_size - 1) / kv_cfg.vector_size;
    return books_per_layer * model_.layers * kv_cfg.codebookBytes();
}

double
IterationPricer::codebookMissUs(std::size_t misses)
{
    if (misses == 0)
        return 0;
    std::uint64_t bytes = codebookGroupBytes();
    if (bytes == 0)
        return 0;
    if (tp_.degree > 1) {
        // Each device uploads only its KV-head shard and the uploads
        // overlap across devices, so the serialized penalty is the
        // critical (widest) shard's share of the group.
        std::size_t degree = static_cast<std::size_t>(tp_.degree);
        std::uint64_t kv_heads = model_.kvHeads();
        std::uint64_t shard_heads = llm::shardSplit(kv_heads, degree, 0);
        bytes = (bytes * shard_heads + kv_heads - 1) / kv_heads;
    }
    double per_upload_us =
        static_cast<double>(bytes) / (cfg_.upload_gbps * 1e9) * 1e6 +
        cfg_.upload_fixed_us;
    double upload_us = per_upload_us * static_cast<double>(misses);
    last_breakdown_.codebook_upload_us += upload_us;
    totals_.codebook_upload_us += upload_us;
    return upload_us;
}

} // namespace vqllm::serving
