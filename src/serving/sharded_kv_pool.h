/**
 * @file
 * Tensor-parallel KV residency: per-device block pools behind one
 * facade.
 *
 * Under TP every sequence's KV cache is head-sharded across all
 * devices, so a sequence is resident on *every* shard simultaneously
 * (each device holds its heads' K/V for every cached token) and any
 * allocation must succeed on every per-device pool or on none.  The
 * facade enforces that all-or-nothing contract: an alloc/extend that
 * fails on some shard rolls back the shards that already took blocks
 * (counted as a cross-shard rollback — the accounting signature of one
 * device's pool being the constraint) and reports failure, which is the
 * scheduler's preemption signal exactly as with a single pool.
 *
 * Capacity queries (freeTokens, extendableTokens, canEverFit) are the
 * minimum over shards — the smallest free pool constrains admission,
 * chunked-prefill slice sizing and decode appends.  Shards are
 * symmetric when the model's KV heads divide evenly across devices;
 * the facade itself supports asymmetric per-device configurations
 * (uneven head splits, heterogeneous HBM) and keeps every sequence's
 * token count identical across shards regardless.
 *
 * Degree 1 is a zero-cost wrapper over one KvBlockPool: identical
 * accounting, identical failure points, identical stats.
 */
#pragma once

#include <string>
#include <vector>

#include "serving/kv_block_pool.h"

namespace vqllm::obs {
class TraceRecorder;
}

namespace vqllm::serving {

/** Facade-level lifetime counters (per-shard counters live in each
 *  shard's KvBlockPoolStats). */
struct ShardedKvPoolStats
{
    /** Alloc/extend attempts that succeeded on a shard prefix but hit
     *  capacity on a later shard and were rolled back.  Nonzero only
     *  when shards are imbalanced — symmetric shards fill in lockstep
     *  and fail on shard 0 first. */
    std::uint64_t cross_shard_rollbacks = 0;
    /** Allocation requests refused (on any shard). */
    std::uint64_t failed_allocs = 0;
};

/**
 * Per-device KV block pools with all-or-nothing sharded allocation.
 *
 * Mirrors the KvBlockPool surface the scheduler and simulator consume,
 * aggregating bytes (sums) and capacities (minima) across shards.
 */
class ShardedKvPool
{
  public:
    /** Symmetric construction: `degree` identical per-device pools. */
    ShardedKvPool(const KvBlockPoolConfig &device_cfg, std::size_t degree);

    /** General construction: one pool per per-device config. */
    explicit ShardedKvPool(const std::vector<KvBlockPoolConfig> &cfgs);

    std::size_t degree() const { return shards_.size(); }

    /** @return true if a sequence of n tokens could ever fit on every
     *  shard (the smallest pool decides). */
    bool canEverFit(std::size_t tokens) const;

    /**
     * Reserve blocks for a new sequence on every shard.
     *
     * @return false (and change nothing on any shard) if any shard
     *         lacks free blocks
     */
    bool allocSequence(std::uint64_t seq_id, std::size_t tokens);

    /**
     * Create a sequence on every shard by sharing already-resident
     * blocks (a prefix-cache hit).  `per_shard[i]` lists the shard-i
     * blocks; all shards gain the same token count.  Attaching never
     * consumes free blocks, so it cannot fail and needs no rollback.
     */
    void attachSequence(std::uint64_t seq_id,
                        const std::vector<std::vector<BlockId>> &per_shard,
                        std::size_t tokens);

    /**
     * Extend a resident sequence by n tokens on every shard.  A shared
     * tail block COW-forks per shard (traced as a `cow_fork` instant).
     *
     * @return false (and change nothing) if any shard cannot extend —
     *         the scheduler's preemption signal.  Shards that already
     *         extended are reverted block-exactly via undoExtend, so
     *         shared prefix blocks survive the rollback.
     */
    bool extendSequence(std::uint64_t seq_id, std::size_t tokens);

    /** Extend by one token (decode step) on every shard. */
    bool
    appendToken(std::uint64_t seq_id)
    {
        return extendSequence(seq_id, 1);
    }

    /** @return tokens the sequence could gain right now on the most
     *  constrained shard. */
    std::size_t extendableTokens(std::uint64_t seq_id) const;

    /** @return tokens a fresh sequence could take right now on the
     *  most constrained shard. */
    std::size_t freeTokens() const;

    /** @return free blocks of the most constrained shard. */
    std::uint64_t freeBlocks() const;

    /** @return used blocks summed over shards. */
    std::uint64_t usedBlocks() const;

    /** Release the sequence's blocks on every shard. */
    void freeSequence(std::uint64_t seq_id);

    /** @return tokens stored by a sequence (identical on all shards;
     *  0 if not resident). */
    std::size_t seqTokens(std::uint64_t seq_id) const;

    /** @return blocks held by a sequence summed over shards (0 if not
     *  resident). */
    std::uint64_t seqBlocks(std::uint64_t seq_id) const;

    /** @return KV bytes in use summed over shards. */
    std::uint64_t usedBytes() const;

    /** @return aggregate capacity, bytes (sum over shards). */
    std::uint64_t capacityBytes() const;

    /** @return aggregate high-water mark, bytes (sum of per-shard
     *  peaks; shards move in near-lockstep so the sum is the fleet
     *  peak). */
    std::uint64_t peakBytes() const;

    // ---- Cache-owned block interface (one entry per shard) ----------

    /**
     * Take one cache-owned block per shard, each storing `fill_tokens`
     * tokens (a partial prefix tail).  All-or-nothing: on any shard's
     * capacity failure the blocks already taken are released.
     *
     * @return false when some shard has no free block
     */
    bool allocCacheBlocks(std::size_t fill_tokens,
                          std::vector<BlockId> *out);

    /** Add one reference per shard (`blocks[i]` on shard i). */
    void addBlockRefs(const std::vector<BlockId> &blocks);

    /** Drop one reference per shard. */
    void releaseBlockRefs(const std::vector<BlockId> &blocks);

    /** Register a reclaimer (prefix-cache eviction hook) on every
     *  shard; see KvBlockPool::setReclaimer. */
    void setReclaimer(std::function<void(std::uint64_t)> reclaim,
                      std::function<std::uint64_t()> reclaimable);

    /** @return copy-on-write forks (shard 0's count — shards fork in
     *  lockstep, so this is the per-sequence-event count). */
    std::uint64_t cowForks() const;

    /** @return blocks shared by more than one owner, summed over
     *  shards. */
    std::uint64_t sharedBlocks() const;

    /** @return tokens stored across live blocks of shard i, shared
     *  blocks counted once (see KvBlockPool::storedTokens). */
    std::size_t
    storedTokens(std::size_t i) const
    {
        return shards_[i].storedTokens();
    }

    const KvBlockPool &shard(std::size_t i) const { return shards_[i]; }

    const ShardedKvPoolStats &stats() const { return stats_; }

    /** Attach a trace recorder (nullptr = off, the default):
     *  alloc/extend/free and their capacity failures record as
     *  instants at the recorder's simulated clock. */
    void setTrace(obs::TraceRecorder *trace) { trace_ = trace; }

    /** Publish facade counters plus every shard's pool metrics under
     *  `<prefix>` / `<prefix>.shard<i>`. */
    void exportMetrics(obs::MetricsRegistry &registry,
                       const std::string &prefix) const;

  private:
    std::vector<KvBlockPool> shards_;
    ShardedKvPoolStats stats_;
    obs::TraceRecorder *trace_ = nullptr;
};

} // namespace vqllm::serving