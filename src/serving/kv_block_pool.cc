#include "serving/kv_block_pool.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace vqllm::serving {

KvBlockPool::KvBlockPool(const KvBlockPoolConfig &cfg) : cfg_(cfg)
{
    vqllm_assert(cfg_.block_tokens > 0, "block_tokens must be positive");
    vqllm_assert(cfg_.bytes_per_token > 0,
                "bytes_per_token must be positive");
    total_blocks_ = cfg_.capacity_bytes / blockBytes();
}

BlockId
KvBlockPool::takeBlock()
{
    BlockId id;
    if (!free_ids_.empty()) {
        id = free_ids_.back();
        free_ids_.pop_back();
    } else {
        // Materialize a new physical id: the table only ever grows to
        // the peak concurrently-used block count, not totalBlocks().
        id = static_cast<BlockId>(block_refs_.size());
        block_refs_.push_back(0);
        block_fill_.push_back(0);
    }
    block_refs_[id] = 1;
    block_fill_[id] = 0;
    ++used_blocks_;
    ++stats_.block_allocs;
    stats_.peak_used_blocks =
        std::max(stats_.peak_used_blocks, used_blocks_);
    return id;
}

void
KvBlockPool::dropRef(BlockId block)
{
    vqllm_assert(block < block_refs_.size() && block_refs_[block] > 0,
                "dropRef on a block that is not live");
    if (--block_refs_[block] == 0) {
        stored_tokens_ -= block_fill_[block];
        block_fill_[block] = 0;
        free_ids_.push_back(block);
        --used_blocks_;
        ++stats_.block_frees;
    }
}

void
KvBlockPool::setFill(BlockId block, std::size_t fill)
{
    vqllm_assert(fill <= cfg_.block_tokens, "fill exceeds block size");
    stored_tokens_ += fill - block_fill_[block];
    block_fill_[block] = static_cast<std::uint32_t>(fill);
}

bool
KvBlockPool::ensureFree(std::uint64_t need)
{
    if (need > freeBlocks() && reclaimer_)
        reclaimer_(need - freeBlocks());
    return need <= freeBlocks();
}

std::uint64_t
KvBlockPool::availableBlocks() const
{
    std::uint64_t avail = freeBlocks();
    if (reclaimable_)
        avail += reclaimable_();
    return avail;
}

bool
KvBlockPool::allocSequence(std::uint64_t seq_id, std::size_t tokens)
{
    vqllm_assert(seqs_.find(seq_id) == seqs_.end(),
                "sequence already resident");
    std::uint64_t need = blocksForTokens(tokens);
    if (!ensureFree(need)) {
        ++stats_.failed_allocs;
        return false;
    }
    SeqEntry &e = seqs_[seq_id];
    e.tokens = tokens;
    e.blocks.reserve(need);
    for (std::uint64_t i = 0; i < need; ++i) {
        BlockId b = takeBlock();
        e.blocks.push_back(b);
        setFill(b, std::min(cfg_.block_tokens,
                            tokens - static_cast<std::size_t>(i) *
                                         cfg_.block_tokens));
    }
    return true;
}

void
KvBlockPool::attachSequence(std::uint64_t seq_id,
                            const std::vector<BlockId> &blocks,
                            std::size_t tokens)
{
    vqllm_assert(seqs_.find(seq_id) == seqs_.end(),
                "sequence already resident");
    vqllm_assert(blocksForTokens(tokens) == blocks.size(),
                "attached block list does not cover the tokens");
    std::size_t stored = 0;
    for (BlockId b : blocks) {
        vqllm_assert(b < block_refs_.size() && block_refs_[b] > 0,
                    "attaching a block that is not live");
        stored += block_fill_[b];
    }
    vqllm_assert(stored == tokens,
                "attached blocks do not store the claimed tokens");
    for (BlockId b : blocks)
        ++block_refs_[b];
    SeqEntry &e = seqs_[seq_id];
    e.tokens = tokens;
    e.blocks = blocks;
}

bool
KvBlockPool::extendSequence(std::uint64_t seq_id, std::size_t tokens,
                            ExtendUndo *undo)
{
    auto it = seqs_.find(seq_id);
    vqllm_assert(it != seqs_.end(), "sequence not resident");
    SeqEntry &e = it->second;
    std::size_t new_tokens = e.tokens + tokens;
    std::uint64_t need_total = blocksForTokens(new_tokens);
    std::size_t held = e.blocks.size();

    // Writing into a shared tail block's slack would clobber the other
    // owners' view: privatize it first (copy-on-write fork).
    bool fork = !e.blocks.empty() &&
                e.tokens % cfg_.block_tokens != 0 &&
                block_refs_[e.blocks.back()] > 1;
    std::uint64_t fresh = (need_total - held) + (fork ? 1 : 0);
    if (fresh > 0 && !ensureFree(fresh)) {
        ++stats_.failed_allocs;
        return false;
    }
    if (undo) {
        undo->old_tokens = e.tokens;
        undo->old_blocks = e.blocks;
    }
    std::size_t first_changed = e.blocks.empty() ? 0 : held - 1;
    if (fork) {
        dropRef(e.blocks.back());
        e.blocks.back() = takeBlock();
        ++stats_.cow_forks;
    }
    while (e.blocks.size() < need_total)
        e.blocks.push_back(takeBlock());
    // Refresh fills from the (possibly forked) old tail onward.  A
    // shared *full* tail is untouched: its fill stays block_tokens.
    for (std::size_t i = first_changed; i < e.blocks.size(); ++i)
        setFill(e.blocks[i],
                std::min(cfg_.block_tokens,
                         new_tokens - i * cfg_.block_tokens));
    e.tokens = new_tokens;
    return true;
}

void
KvBlockPool::undoExtend(std::uint64_t seq_id, const ExtendUndo &undo)
{
    auto it = seqs_.find(seq_id);
    vqllm_assert(it != seqs_.end(), "sequence not resident");
    SeqEntry &e = it->second;
    std::size_t k = undo.old_blocks.size();
    vqllm_assert(e.blocks.size() >= k && e.tokens >= undo.old_tokens,
                "undo record does not match the sequence");
    for (std::size_t i = e.blocks.size(); i-- > k;)
        dropRef(e.blocks[i]);
    if (k > 0) {
        if (e.blocks[k - 1] != undo.old_blocks[k - 1]) {
            // The extension COW-forked the tail: re-share the original
            // block and discard the private copy.
            ++block_refs_[undo.old_blocks[k - 1]];
            dropRef(e.blocks[k - 1]);
            --stats_.cow_forks;
        } else {
            setFill(e.blocks[k - 1],
                    undo.old_tokens - (k - 1) * cfg_.block_tokens);
        }
    }
    e.tokens = undo.old_tokens;
    e.blocks = undo.old_blocks;
}

std::size_t
KvBlockPool::extendableTokens(std::uint64_t seq_id) const
{
    auto it = seqs_.find(seq_id);
    vqllm_assert(it != seqs_.end(), "sequence not resident");
    const SeqEntry &e = it->second;
    std::size_t slack =
        e.blocks.size() * cfg_.block_tokens - e.tokens;
    std::uint64_t avail = availableBlocks();
    if (slack > 0 && block_refs_[e.blocks.back()] > 1) {
        // The slack sits in a shared tail: using any of it costs one
        // available block for the COW fork first.
        if (avail == 0)
            return 0;
        return slack + static_cast<std::size_t>(avail - 1) *
                           cfg_.block_tokens;
    }
    return slack +
           static_cast<std::size_t>(avail) * cfg_.block_tokens;
}

void
KvBlockPool::freeSequence(std::uint64_t seq_id)
{
    auto it = seqs_.find(seq_id);
    if (it == seqs_.end())
        return;
    for (BlockId b : it->second.blocks)
        dropRef(b);
    seqs_.erase(it);
}

std::uint64_t
KvBlockPool::seqBlocks(std::uint64_t seq_id) const
{
    auto it = seqs_.find(seq_id);
    return it == seqs_.end() ? 0 : it->second.blocks.size();
}

std::size_t
KvBlockPool::seqTokens(std::uint64_t seq_id) const
{
    auto it = seqs_.find(seq_id);
    return it == seqs_.end() ? 0 : it->second.tokens;
}

const std::vector<BlockId> &
KvBlockPool::seqBlockIds(std::uint64_t seq_id) const
{
    auto it = seqs_.find(seq_id);
    vqllm_assert(it != seqs_.end(), "sequence not resident");
    return it->second.blocks;
}

bool
KvBlockPool::allocCacheBlock(std::size_t fill_tokens, BlockId *out)
{
    vqllm_assert(fill_tokens > 0 && fill_tokens <= cfg_.block_tokens,
                "cache block fill must be within one block");
    // Deliberately no reclaimer here: the cache skips the insert when
    // the pool is full rather than evicting itself reentrantly.
    if (freeBlocks() == 0)
        return false;
    *out = takeBlock();
    setFill(*out, fill_tokens);
    return true;
}

void
KvBlockPool::addBlockRef(BlockId block)
{
    vqllm_assert(block < block_refs_.size() && block_refs_[block] > 0,
                "addBlockRef on a block that is not live");
    ++block_refs_[block];
}

void
KvBlockPool::releaseBlockRef(BlockId block)
{
    dropRef(block);
}

std::uint32_t
KvBlockPool::blockRefs(BlockId block) const
{
    return block < block_refs_.size() ? block_refs_[block] : 0;
}

std::uint64_t
KvBlockPool::sharedBlocks() const
{
    std::uint64_t shared = 0;
    for (std::uint32_t refs : block_refs_)
        shared += refs > 1 ? 1 : 0;
    return shared;
}

void
KvBlockPool::exportMetrics(obs::MetricsRegistry &registry,
                           const std::string &prefix) const
{
    registry.counter(prefix + ".block_allocs").add(stats_.block_allocs);
    registry.counter(prefix + ".block_frees").add(stats_.block_frees);
    registry.counter(prefix + ".failed_allocs")
        .add(stats_.failed_allocs);
    registry.counter(prefix + ".cow_forks").add(stats_.cow_forks);
    registry.gauge(prefix + ".total_blocks")
        .set(static_cast<double>(total_blocks_));
    registry.gauge(prefix + ".used_blocks")
        .set(static_cast<double>(used_blocks_));
    registry.gauge(prefix + ".shared_blocks")
        .set(static_cast<double>(sharedBlocks()));
    registry.gauge(prefix + ".peak_used_blocks")
        .set(static_cast<double>(stats_.peak_used_blocks));
    registry.gauge(prefix + ".peak_bytes")
        .set(static_cast<double>(peakBytes()));
    registry.gauge(prefix + ".capacity_bytes")
        .set(static_cast<double>(total_blocks_ * blockBytes()));
    registry.gauge(prefix + ".internal_fragmentation")
        .set(internalFragmentation());
}

double
KvBlockPool::internalFragmentation() const
{
    std::uint64_t slots = used_blocks_ * cfg_.block_tokens;
    if (slots == 0)
        return 0.0;
    return 1.0 - static_cast<double>(stored_tokens_) /
                     static_cast<double>(slots);
}

// ---------------------------------------------------------------------
// CodebookResidency

CodebookResidency::CodebookResidency(std::size_t slots) : slots_(slots)
{
    vqllm_assert(slots_ > 0, "residency cache needs at least one slot");
}

bool
CodebookResidency::resident(std::uint64_t group) const
{
    return resident_.find(group) != resident_.end();
}

void
CodebookResidency::exportMetrics(obs::MetricsRegistry &registry,
                                 const std::string &prefix) const
{
    registry.counter(prefix + ".hits").add(stats_.hits);
    registry.counter(prefix + ".misses").add(stats_.misses);
    registry.counter(prefix + ".evictions").add(stats_.evictions);
    registry.counter(prefix + ".overflow").add(stats_.overflow);
    registry.gauge(prefix + ".hit_rate").set(stats_.hitRate());
    registry.gauge(prefix + ".resident_groups")
        .set(static_cast<double>(resident_.size()));
    registry.gauge(prefix + ".slots")
        .set(static_cast<double>(slots_));
}

CodebookResidency::BatchResult
CodebookResidency::touchBatch(const std::vector<std::uint64_t> &groups)
{
    BatchResult out;

    // Deduplicate: one upload serves every sequence sharing the group.
    std::vector<std::uint64_t> unique = groups;
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()),
                 unique.end());

    // Pin already-resident members of the batch so admissions below
    // cannot evict them mid-iteration.
    for (std::uint64_t g : unique) {
        auto it = resident_.find(g);
        if (it != resident_.end())
            it->second.pinned = true;
    }

    for (std::uint64_t g : unique) {
        auto it = resident_.find(g);
        if (it != resident_.end()) {
            ++it->second.freq;
            ++out.hits;
            continue;
        }
        ++out.misses;
        if (resident_.size() >= slots_) {
            // Hit-aware LFU victim: min frequency among unpinned
            // residents; ties toward the smallest group id.
            auto victim = resident_.end();
            for (auto cand = resident_.begin(); cand != resident_.end();
                 ++cand) {
                if (cand->second.pinned)
                    continue;
                if (victim == resident_.end() ||
                    cand->second.freq < victim->second.freq ||
                    (cand->second.freq == victim->second.freq &&
                     cand->first < victim->first))
                    victim = cand;
            }
            if (victim == resident_.end()) {
                // Whole cache pinned by this batch: the group cannot be
                // admitted and streams from HBM (capacity thrash).
                ++out.overflow;
                continue;
            }
            resident_.erase(victim);
            ++out.evictions;
        }
        resident_.emplace(g, Slot{1, true});
    }

    for (auto &[g, slot] : resident_)
        slot.pinned = false;

    stats_.hits += out.hits;
    stats_.misses += out.misses;
    stats_.evictions += out.evictions;
    stats_.overflow += out.overflow;
    return out;
}

} // namespace vqllm::serving
