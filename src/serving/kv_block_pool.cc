#include "serving/kv_block_pool.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace vqllm::serving {

KvBlockPool::KvBlockPool(const KvBlockPoolConfig &cfg) : cfg_(cfg)
{
    vqllm_assert(cfg_.block_tokens > 0, "block_tokens must be positive");
    vqllm_assert(cfg_.bytes_per_token > 0,
                "bytes_per_token must be positive");
    total_blocks_ = cfg_.capacity_bytes / blockBytes();
}

bool
KvBlockPool::allocSequence(std::uint64_t seq_id, std::size_t tokens)
{
    vqllm_assert(seqs_.find(seq_id) == seqs_.end(),
                "sequence already resident");
    std::uint64_t need = blocksForTokens(tokens);
    if (need > freeBlocks()) {
        ++stats_.failed_allocs;
        return false;
    }
    seqs_[seq_id] = SeqEntry{tokens, need};
    used_blocks_ += need;
    stored_tokens_ += tokens;
    stats_.block_allocs += need;
    stats_.peak_used_blocks =
        std::max(stats_.peak_used_blocks, used_blocks_);
    return true;
}

bool
KvBlockPool::extendSequence(std::uint64_t seq_id, std::size_t tokens)
{
    auto it = seqs_.find(seq_id);
    vqllm_assert(it != seqs_.end(), "sequence not resident");
    SeqEntry &e = it->second;
    std::uint64_t need = blocksForTokens(e.tokens + tokens);
    if (need > e.blocks) {
        std::uint64_t fresh = need - e.blocks;
        if (fresh > freeBlocks()) {
            ++stats_.failed_allocs;
            return false;
        }
        e.blocks = need;
        used_blocks_ += fresh;
        stats_.block_allocs += fresh;
        stats_.peak_used_blocks =
            std::max(stats_.peak_used_blocks, used_blocks_);
    }
    e.tokens += tokens;
    stored_tokens_ += tokens;
    return true;
}

std::size_t
KvBlockPool::extendableTokens(std::uint64_t seq_id) const
{
    auto it = seqs_.find(seq_id);
    vqllm_assert(it != seqs_.end(), "sequence not resident");
    const SeqEntry &e = it->second;
    std::size_t slack =
        static_cast<std::size_t>(e.blocks) * cfg_.block_tokens - e.tokens;
    return slack + freeTokens();
}

void
KvBlockPool::freeSequence(std::uint64_t seq_id)
{
    auto it = seqs_.find(seq_id);
    if (it == seqs_.end())
        return;
    used_blocks_ -= it->second.blocks;
    stored_tokens_ -= it->second.tokens;
    stats_.block_frees += it->second.blocks;
    seqs_.erase(it);
}

std::uint64_t
KvBlockPool::seqBlocks(std::uint64_t seq_id) const
{
    auto it = seqs_.find(seq_id);
    return it == seqs_.end() ? 0 : it->second.blocks;
}

std::size_t
KvBlockPool::seqTokens(std::uint64_t seq_id) const
{
    auto it = seqs_.find(seq_id);
    return it == seqs_.end() ? 0 : it->second.tokens;
}

void
KvBlockPool::exportMetrics(obs::MetricsRegistry &registry,
                           const std::string &prefix) const
{
    registry.counter(prefix + ".block_allocs").add(stats_.block_allocs);
    registry.counter(prefix + ".block_frees").add(stats_.block_frees);
    registry.counter(prefix + ".failed_allocs")
        .add(stats_.failed_allocs);
    registry.gauge(prefix + ".total_blocks")
        .set(static_cast<double>(total_blocks_));
    registry.gauge(prefix + ".used_blocks")
        .set(static_cast<double>(used_blocks_));
    registry.gauge(prefix + ".peak_used_blocks")
        .set(static_cast<double>(stats_.peak_used_blocks));
    registry.gauge(prefix + ".peak_bytes")
        .set(static_cast<double>(peakBytes()));
    registry.gauge(prefix + ".capacity_bytes")
        .set(static_cast<double>(total_blocks_ * blockBytes()));
    registry.gauge(prefix + ".internal_fragmentation")
        .set(internalFragmentation());
}

double
KvBlockPool::internalFragmentation() const
{
    std::uint64_t slots = used_blocks_ * cfg_.block_tokens;
    if (slots == 0)
        return 0.0;
    return 1.0 - static_cast<double>(stored_tokens_) /
                     static_cast<double>(slots);
}

// ---------------------------------------------------------------------
// CodebookResidency

CodebookResidency::CodebookResidency(std::size_t slots) : slots_(slots)
{
    vqllm_assert(slots_ > 0, "residency cache needs at least one slot");
}

bool
CodebookResidency::resident(std::uint64_t group) const
{
    return resident_.find(group) != resident_.end();
}

void
CodebookResidency::exportMetrics(obs::MetricsRegistry &registry,
                                 const std::string &prefix) const
{
    registry.counter(prefix + ".hits").add(stats_.hits);
    registry.counter(prefix + ".misses").add(stats_.misses);
    registry.counter(prefix + ".evictions").add(stats_.evictions);
    registry.counter(prefix + ".overflow").add(stats_.overflow);
    registry.gauge(prefix + ".hit_rate").set(stats_.hitRate());
    registry.gauge(prefix + ".resident_groups")
        .set(static_cast<double>(resident_.size()));
    registry.gauge(prefix + ".slots")
        .set(static_cast<double>(slots_));
}

CodebookResidency::BatchResult
CodebookResidency::touchBatch(const std::vector<std::uint64_t> &groups)
{
    BatchResult out;

    // Deduplicate: one upload serves every sequence sharing the group.
    std::vector<std::uint64_t> unique = groups;
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()),
                 unique.end());

    // Pin already-resident members of the batch so admissions below
    // cannot evict them mid-iteration.
    for (std::uint64_t g : unique) {
        auto it = resident_.find(g);
        if (it != resident_.end())
            it->second.pinned = true;
    }

    for (std::uint64_t g : unique) {
        auto it = resident_.find(g);
        if (it != resident_.end()) {
            ++it->second.freq;
            ++out.hits;
            continue;
        }
        ++out.misses;
        if (resident_.size() >= slots_) {
            // Hit-aware LFU victim: min frequency among unpinned
            // residents; ties toward the smallest group id.
            auto victim = resident_.end();
            for (auto cand = resident_.begin(); cand != resident_.end();
                 ++cand) {
                if (cand->second.pinned)
                    continue;
                if (victim == resident_.end() ||
                    cand->second.freq < victim->second.freq ||
                    (cand->second.freq == victim->second.freq &&
                     cand->first < victim->first))
                    victim = cand;
            }
            if (victim == resident_.end()) {
                // Whole cache pinned by this batch: the group cannot be
                // admitted and streams from HBM (capacity thrash).
                ++out.overflow;
                continue;
            }
            resident_.erase(victim);
            ++out.evictions;
        }
        resident_.emplace(g, Slot{1, true});
    }

    for (auto &[g, slot] : resident_)
        slot.pinned = false;

    stats_.hits += out.hits;
    stats_.misses += out.misses;
    stats_.evictions += out.evictions;
    stats_.overflow += out.overflow;
    return out;
}

} // namespace vqllm::serving
