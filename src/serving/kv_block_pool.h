/**
 * @file
 * Paged VQ KV-cache block pool and codebook residency cache.
 *
 * The serving layer stores every sequence's quantized KV cache in
 * fixed-size token blocks (paged-attention style).  Fixed pages remove
 * external fragmentation entirely, so the pool's job is accounting:
 * per-sequence block lists, capacity pressure (a failed extension is the
 * scheduler's preemption signal), the high-water mark, and internal
 * fragmentation (allocated-but-unused token slots in tail blocks).
 * Bytes per token come from the quantization scheme
 * (llm::schemeKvBytesPerToken), which is where VQ buys its capacity: a
 * CQ-2 cache packs ~7x the tokens of FP16 into the same HBM.
 *
 * CodebookResidency models the GPU-resident codebook slots shared by a
 * mixed batch: each request's codebook group must be resident for the
 * iteration that touches it.  Eviction is hit-aware LFU — frequencies
 * accumulate across iterations, and groups referenced by the *current*
 * batch are pinned so they cannot evict each other mid-iteration (the
 * masking idiom of hit-aware LFU embedding caches).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace vqllm::obs {
class MetricsRegistry;
}

namespace vqllm::serving {

/** Static parameters of the block pool. */
struct KvBlockPoolConfig
{
    /** HBM bytes reserved for the KV cache. */
    std::uint64_t capacity_bytes = 8ull << 30;
    /** Tokens per block (paged-attention page size). */
    std::size_t block_tokens = 16;
    /** KV bytes one token occupies across all layers under the active
     *  quantization scheme. */
    std::uint64_t bytes_per_token = 1;
};

/** Lifetime counters of the pool. */
struct KvBlockPoolStats
{
    std::uint64_t block_allocs = 0;
    std::uint64_t block_frees = 0;
    /** Allocation requests refused for lack of free blocks. */
    std::uint64_t failed_allocs = 0;
    /** Peak concurrently-used blocks. */
    std::uint64_t peak_used_blocks = 0;
};

/**
 * Fixed-size paged allocator for quantized KV caches.
 *
 * Sequences allocate whole blocks; a sequence holding t tokens owns
 * ceil(t / block_tokens) blocks.  All operations are O(1) in the number
 * of resident sequences.
 */
class KvBlockPool
{
  public:
    explicit KvBlockPool(const KvBlockPoolConfig &cfg);

    /** @return total blocks the capacity affords. */
    std::uint64_t totalBlocks() const { return total_blocks_; }

    /** @return currently free blocks. */
    std::uint64_t
    freeBlocks() const
    {
        return total_blocks_ - used_blocks_;
    }

    std::uint64_t usedBlocks() const { return used_blocks_; }

    /** @return blocks needed to hold n tokens. */
    std::uint64_t
    blocksForTokens(std::size_t tokens) const
    {
        return (tokens + cfg_.block_tokens - 1) / cfg_.block_tokens;
    }

    /** @return true if a sequence of n tokens could ever fit. */
    bool
    canEverFit(std::size_t tokens) const
    {
        return blocksForTokens(tokens) <= total_blocks_;
    }

    /**
     * Reserve blocks for a new (or re-prefilling) sequence of n tokens.
     *
     * @return false (and change nothing) if free blocks are insufficient
     */
    bool allocSequence(std::uint64_t seq_id, std::size_t tokens);

    /**
     * Extend a resident sequence by n tokens, taking fresh blocks as
     * tokens cross block boundaries.
     *
     * @return false if blocks were needed and too few were free (the
     *         scheduler's preemption signal); the sequence is unchanged
     */
    bool extendSequence(std::uint64_t seq_id, std::size_t tokens);

    /**
     * Extend a resident sequence by one token (decode step).
     *
     * @return false if a block was needed and none was free; the
     *         sequence is unchanged
     */
    bool
    appendToken(std::uint64_t seq_id)
    {
        return extendSequence(seq_id, 1);
    }

    /** @return tokens a resident sequence could gain right now without
     *  failing: tail-block slack plus every free block. */
    std::size_t extendableTokens(std::uint64_t seq_id) const;

    /** @return tokens a fresh sequence could take right now. */
    std::size_t
    freeTokens() const
    {
        return static_cast<std::size_t>(freeBlocks()) * cfg_.block_tokens;
    }

    /** Release all blocks of a sequence (completion or preemption). */
    void freeSequence(std::uint64_t seq_id);

    /** @return blocks held by a sequence (0 if not resident). */
    std::uint64_t seqBlocks(std::uint64_t seq_id) const;

    /** @return tokens stored by a sequence (0 if not resident). */
    std::size_t seqTokens(std::uint64_t seq_id) const;

    std::uint64_t
    usedBytes() const
    {
        return used_blocks_ * blockBytes();
    }

    /** @return peak concurrently-used KV bytes (high-water mark). */
    std::uint64_t
    peakBytes() const
    {
        return stats_.peak_used_blocks * blockBytes();
    }

    /** @return bytes of one block. */
    std::uint64_t
    blockBytes() const
    {
        return cfg_.block_tokens * cfg_.bytes_per_token;
    }

    /**
     * Internal fragmentation: fraction of allocated token slots not
     * holding a token (tail-block slack).  Fixed paging has no external
     * fragmentation, so this is the pool's only wasted space.
     */
    double internalFragmentation() const;

    const KvBlockPoolStats &stats() const { return stats_; }
    const KvBlockPoolConfig &config() const { return cfg_; }

    /** Publish the pool's counters and occupancy under
     *  `<prefix>.`-qualified names (e.g. `serving.kv.shard0`). */
    void exportMetrics(obs::MetricsRegistry &registry,
                       const std::string &prefix) const;

  private:
    struct SeqEntry
    {
        std::size_t tokens = 0;
        std::uint64_t blocks = 0;
    };

    KvBlockPoolConfig cfg_;
    std::uint64_t total_blocks_ = 0;
    std::uint64_t used_blocks_ = 0;
    std::size_t stored_tokens_ = 0;
    std::unordered_map<std::uint64_t, SeqEntry> seqs_;
    KvBlockPoolStats stats_;
};

/** Lifetime counters of the residency cache. */
struct CodebookResidencyStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /** Capacity misses: groups that could not be admitted because the
     *  current batch pinned every slot (the batch holds more distinct
     *  groups than the cache has slots).  A subset of misses — an
     *  overflowing group streams from HBM every iteration, which is
     *  thrash, not a cold start. */
    std::uint64_t overflow = 0;

    double
    hitRate() const
    {
        std::uint64_t total = hits + misses;
        return total == 0 ? 1.0
                          : static_cast<double>(hits) / total;
    }
};

/**
 * Hit-aware LFU cache of GPU-resident codebook-group slots.
 *
 * touchBatch() processes one iteration's working set: every group in the
 * batch is pinned for the duration of the call, so admitting a missing
 * group can only evict groups *outside* the current batch.  Eviction
 * picks the minimum-frequency unpinned resident (ties broken toward the
 * smallest group id for determinism).
 */
class CodebookResidency
{
  public:
    /** @param slots resident codebook-group capacity (>= 1). */
    explicit CodebookResidency(std::size_t slots);

    /** Per-iteration outcome of touchBatch. */
    struct BatchResult
    {
        std::size_t hits = 0;
        std::size_t misses = 0;
        std::size_t evictions = 0;
        /** Misses that could not be admitted (batch pinned all slots). */
        std::size_t overflow = 0;
    };

    /**
     * Reference one iteration's codebook groups (duplicates are
     * counted once — a group serves every sequence in the batch that
     * shares it).  Misses admit the group, evicting hit-aware-LFU
     * victims as needed.  If the batch holds more distinct groups than
     * slots, the overflow groups stay non-resident and count as misses
     * every iteration (they stream from HBM).
     */
    BatchResult touchBatch(const std::vector<std::uint64_t> &groups);

    bool resident(std::uint64_t group) const;
    std::size_t size() const { return resident_.size(); }
    std::size_t capacity() const { return slots_; }
    const CodebookResidencyStats &stats() const { return stats_; }

    /** Publish hit/miss/eviction/overflow counters and the hit rate
     *  under `<prefix>.`-qualified names. */
    void exportMetrics(obs::MetricsRegistry &registry,
                       const std::string &prefix) const;

  private:
    struct Slot
    {
        std::uint64_t freq = 0;
        bool pinned = false;
    };

    std::size_t slots_;
    std::unordered_map<std::uint64_t, Slot> resident_;
    CodebookResidencyStats stats_;
};

} // namespace vqllm::serving
