/**
 * @file
 * Paged VQ KV-cache block pool and codebook residency cache.
 *
 * The serving layer stores every sequence's quantized KV cache in
 * fixed-size token blocks (paged-attention style).  Fixed pages remove
 * external fragmentation entirely, so the pool's job is accounting: the
 * per-sequence block lists, capacity pressure (a failed extension is the
 * scheduler's preemption signal), the high-water mark, and internal
 * fragmentation (allocated-but-unused token slots in tail blocks).
 * Bytes per token come from the quantization scheme
 * (llm::schemeKvBytesPerToken), which is where VQ buys its capacity: a
 * CQ-2 cache packs ~7x the tokens of FP16 into the same HBM.
 *
 * Blocks carry identities and reference counts so the prefix cache can
 * map one physical block into many sequences (cross-request prefix
 * sharing): attachSequence() raises refcounts instead of consuming free
 * blocks, and an extension that would write into a shared tail block's
 * slack copy-on-write forks the tail first.  Block ids materialize
 * lazily up to the high-water mark — a pool sized for hundreds of
 * millions of blocks only ever tracks its peak concurrently-used few
 * thousand — and freed ids recycle LIFO, so id assignment is
 * deterministic.  Under capacity pressure the pool consults an optional
 * reclaimer (the prefix cache's eviction hook) before declaring an
 * allocation failure, and the paired reclaimable query folds those
 * evictable blocks into the capacity estimates (freeTokens /
 * extendableTokens) so slice sizing can rely on the reclaim that the
 * subsequent alloc will trigger.
 *
 * CodebookResidency models the GPU-resident codebook slots shared by a
 * mixed batch: each request's codebook group must be resident for the
 * iteration that touches it.  Eviction is hit-aware LFU — frequencies
 * accumulate across iterations, and groups referenced by the *current*
 * batch are pinned so they cannot evict each other mid-iteration (the
 * masking idiom of hit-aware LFU embedding caches).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace vqllm::obs {
class MetricsRegistry;
}

namespace vqllm::serving {

/** Physical block identifier within one pool (dense, reused LIFO). */
using BlockId = std::uint32_t;

/** Static parameters of the block pool. */
struct KvBlockPoolConfig
{
    /** HBM bytes reserved for the KV cache. */
    std::uint64_t capacity_bytes = 8ull << 30;
    /** Tokens per block (paged-attention page size). */
    std::size_t block_tokens = 16;
    /** KV bytes one token occupies across all layers under the active
     *  quantization scheme. */
    std::uint64_t bytes_per_token = 1;
};

/** Lifetime counters of the pool. */
struct KvBlockPoolStats
{
    std::uint64_t block_allocs = 0;
    std::uint64_t block_frees = 0;
    /** Allocation requests refused for lack of free blocks. */
    std::uint64_t failed_allocs = 0;
    /** Peak concurrently-used blocks. */
    std::uint64_t peak_used_blocks = 0;
    /** Copy-on-write forks: extensions that wrote into a shared tail
     *  block's slack and privatized it first. */
    std::uint64_t cow_forks = 0;
};

/**
 * Fixed-size paged allocator for quantized KV caches with block-level
 * reference counts.
 *
 * Sequences allocate whole blocks; a sequence holding t tokens owns
 * ceil(t / block_tokens) blocks.  Blocks may be shared across owners
 * (sequences and the prefix cache); a shared block is counted once in
 * the pool-level occupancy (usedBlocks / storedTokens) while every
 * owner's per-sequence view (seqTokens / seqBlocks) is unchanged.
 */
class KvBlockPool
{
  public:
    explicit KvBlockPool(const KvBlockPoolConfig &cfg);

    /** @return total blocks the capacity affords. */
    std::uint64_t totalBlocks() const { return total_blocks_; }

    /** @return currently free blocks (physical; excludes blocks the
     *  reclaimer could surrender — see availableBlocks()). */
    std::uint64_t
    freeBlocks() const
    {
        return total_blocks_ - used_blocks_;
    }

    std::uint64_t usedBlocks() const { return used_blocks_; }

    /** @return free blocks plus blocks the registered reclaimer could
     *  release right now (the capacity the next alloc can count on). */
    std::uint64_t availableBlocks() const;

    /** @return blocks needed to hold n tokens. */
    std::uint64_t
    blocksForTokens(std::size_t tokens) const
    {
        return (tokens + cfg_.block_tokens - 1) / cfg_.block_tokens;
    }

    /** @return true if a sequence of n tokens could ever fit. */
    bool
    canEverFit(std::size_t tokens) const
    {
        return blocksForTokens(tokens) <= total_blocks_;
    }

    /**
     * Reserve blocks for a new (or re-prefilling) sequence of n tokens.
     *
     * @return false (and change nothing) if free blocks are insufficient
     *         even after asking the reclaimer
     */
    bool allocSequence(std::uint64_t seq_id, std::size_t tokens);

    /**
     * Create a sequence that *shares* already-resident blocks (a prefix
     * cache hit): each listed block's refcount rises, no free block is
     * consumed, and the sequence starts holding exactly `tokens`, which
     * must equal the blocks' stored tokens (full blocks plus the tail
     * block's fill).  Writing past a shared tail copy-on-write forks it
     * (see extendSequence).
     */
    void attachSequence(std::uint64_t seq_id,
                        const std::vector<BlockId> &blocks,
                        std::size_t tokens);

    /** Undo record of one extendSequence call, for the all-or-nothing
     *  cross-shard rollback in ShardedKvPool. */
    struct ExtendUndo
    {
        std::size_t old_tokens = 0;
        std::vector<BlockId> old_blocks;
    };

    /**
     * Extend a resident sequence by n tokens, taking fresh blocks as
     * tokens cross block boundaries.  If the tail block is shared and
     * has slack, it is copy-on-write forked first (one extra fresh
     * block; counted in stats().cow_forks).
     *
     * @param undo when non-null, filled with the state needed to revert
     *        a successful extension via undoExtend()
     * @return false if blocks were needed and too few were free even
     *         after reclaim (the scheduler's preemption signal); the
     *         sequence is unchanged
     */
    bool extendSequence(std::uint64_t seq_id, std::size_t tokens,
                        ExtendUndo *undo = nullptr);

    /** Revert a successful extendSequence (a sharded extension hit
     *  capacity on a later shard): appended blocks free, a COW-forked
     *  tail re-shares the original block. */
    void undoExtend(std::uint64_t seq_id, const ExtendUndo &undo);

    /**
     * Extend a resident sequence by one token (decode step).
     *
     * @return false if a block was needed and none was free; the
     *         sequence is unchanged
     */
    bool
    appendToken(std::uint64_t seq_id)
    {
        return extendSequence(seq_id, 1);
    }

    /** @return tokens a resident sequence could gain right now without
     *  failing: tail-block slack plus every available block (a shared
     *  tail's slack is only writable after a COW fork, which costs one
     *  of those blocks itself). */
    std::size_t extendableTokens(std::uint64_t seq_id) const;

    /** @return tokens a fresh sequence could take right now. */
    std::size_t
    freeTokens() const
    {
        return static_cast<std::size_t>(availableBlocks()) *
               cfg_.block_tokens;
    }

    /** Release all blocks of a sequence (completion or preemption).
     *  Shared blocks merely drop a reference. */
    void freeSequence(std::uint64_t seq_id);

    /** @return blocks held by a sequence (0 if not resident). */
    std::uint64_t seqBlocks(std::uint64_t seq_id) const;

    /** @return tokens stored by a sequence (0 if not resident). */
    std::size_t seqTokens(std::uint64_t seq_id) const;

    /** @return the sequence's physical block list (must be resident). */
    const std::vector<BlockId> &seqBlockIds(std::uint64_t seq_id) const;

    // ---- Cache-owned block interface (prefix cache) -----------------

    /**
     * Take one block owned by a cache rather than a sequence, storing
     * `fill_tokens` tokens (a partial prefix tail).  Unlike sequence
     * allocation this never consults the reclaimer — the cache skips
     * the insert instead of evicting itself.
     *
     * @return false when no block is free
     */
    bool allocCacheBlock(std::size_t fill_tokens, BlockId *out);

    /** Add a reference to a resident block (prefix-cache insertion of
     *  a writer's full block). */
    void addBlockRef(BlockId block);

    /** Drop a reference; at zero the block returns to the free list. */
    void releaseBlockRef(BlockId block);

    /** @return references currently held on a block (0 if free or
     *  never materialized). */
    std::uint32_t blockRefs(BlockId block) const;

    /** @return live physical blocks referenced by more than one
     *  owner. */
    std::uint64_t sharedBlocks() const;

    /** @return tokens stored across live blocks, shared blocks counted
     *  once — the pool-level view backing the simulator's accounting
     *  invariant (per-sequence seqTokens sums count shared tokens once
     *  per owner instead). */
    std::size_t storedTokens() const { return stored_tokens_; }

    /**
     * Register a reclaimer consulted under capacity pressure: before an
     * alloc/extend fails, the pool asks it to release `need` blocks
     * (the prefix cache evicts cold unpinned prefixes) and re-checks
     * once.  `reclaimable` reports how many blocks a reclaim could
     * free right now; it feeds availableBlocks() so capacity queries
     * and the eventual allocation agree.  Pass empty functions to
     * detach.
     */
    void
    setReclaimer(std::function<void(std::uint64_t)> reclaim,
                 std::function<std::uint64_t()> reclaimable)
    {
        reclaimer_ = std::move(reclaim);
        reclaimable_ = std::move(reclaimable);
    }

    std::uint64_t
    usedBytes() const
    {
        return used_blocks_ * blockBytes();
    }

    /** @return peak concurrently-used KV bytes (high-water mark). */
    std::uint64_t
    peakBytes() const
    {
        return stats_.peak_used_blocks * blockBytes();
    }

    /** @return bytes of one block. */
    std::uint64_t
    blockBytes() const
    {
        return cfg_.block_tokens * cfg_.bytes_per_token;
    }

    /**
     * Internal fragmentation: fraction of allocated token slots not
     * holding a token (tail-block slack).  Fixed paging has no external
     * fragmentation, so this is the pool's only wasted space.
     */
    double internalFragmentation() const;

    const KvBlockPoolStats &stats() const { return stats_; }
    const KvBlockPoolConfig &config() const { return cfg_; }

    /** Publish the pool's counters and occupancy under
     *  `<prefix>.`-qualified names (e.g. `serving.kv.shard0`). */
    void exportMetrics(obs::MetricsRegistry &registry,
                       const std::string &prefix) const;

  private:
    struct SeqEntry
    {
        std::size_t tokens = 0;
        std::vector<BlockId> blocks;
    };

    BlockId takeBlock();
    void dropRef(BlockId block);
    void setFill(BlockId block, std::size_t fill);
    bool ensureFree(std::uint64_t need);

    KvBlockPoolConfig cfg_;
    std::uint64_t total_blocks_ = 0;
    std::uint64_t used_blocks_ = 0;
    /** Sum of live blocks' fills (shared blocks counted once). */
    std::size_t stored_tokens_ = 0;
    std::unordered_map<std::uint64_t, SeqEntry> seqs_;
    /** Physical block table, materialized lazily up to the high-water
     *  mark; index = BlockId. */
    std::vector<std::uint32_t> block_refs_;
    std::vector<std::uint32_t> block_fill_;
    /** Freed ids, reused LIFO (deterministic). */
    std::vector<BlockId> free_ids_;
    std::function<void(std::uint64_t)> reclaimer_;
    std::function<std::uint64_t()> reclaimable_;
    KvBlockPoolStats stats_;
};

/** Lifetime counters of the residency cache. */
struct CodebookResidencyStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /** Capacity misses: groups that could not be admitted because the
     *  current batch pinned every slot (the batch holds more distinct
     *  groups than the cache has slots).  A subset of misses — an
     *  overflowing group streams from HBM every iteration, which is
     *  thrash, not a cold start. */
    std::uint64_t overflow = 0;

    double
    hitRate() const
    {
        std::uint64_t total = hits + misses;
        return total == 0 ? 1.0
                          : static_cast<double>(hits) / total;
    }
};

/**
 * Hit-aware LFU cache of GPU-resident codebook-group slots.
 *
 * touchBatch() processes one iteration's working set: every group in the
 * batch is pinned for the duration of the call, so admitting a missing
 * group can only evict groups *outside* the current batch.  Eviction
 * picks the minimum-frequency unpinned resident (ties broken toward the
 * smallest group id for determinism).
 */
class CodebookResidency
{
  public:
    /** @param slots resident codebook-group capacity (>= 1). */
    explicit CodebookResidency(std::size_t slots);

    /** Per-iteration outcome of touchBatch. */
    struct BatchResult
    {
        std::size_t hits = 0;
        std::size_t misses = 0;
        std::size_t evictions = 0;
        /** Misses that could not be admitted (batch pinned all slots). */
        std::size_t overflow = 0;
    };

    /**
     * Reference one iteration's codebook groups (duplicates are
     * counted once — a group serves every sequence in the batch that
     * shares it).  Misses admit the group, evicting hit-aware-LFU
     * victims as needed.  If the batch holds more distinct groups than
     * slots, the overflow groups stay non-resident and count as misses
     * every iteration (they stream from HBM).
     */
    BatchResult touchBatch(const std::vector<std::uint64_t> &groups);

    bool resident(std::uint64_t group) const;
    std::size_t size() const { return resident_.size(); }
    std::size_t capacity() const { return slots_; }
    const CodebookResidencyStats &stats() const { return stats_; }

    /** Publish hit/miss/eviction/overflow counters and the hit rate
     *  under `<prefix>.`-qualified names. */
    void exportMetrics(obs::MetricsRegistry &registry,
                       const std::string &prefix) const;

  private:
    struct Slot
    {
        std::uint64_t freq = 0;
        bool pinned = false;
    };

    std::size_t slots_;
    std::unordered_map<std::uint64_t, Slot> resident_;
    CodebookResidencyStats stats_;
};

} // namespace vqllm::serving
