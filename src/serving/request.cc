#include "serving/request.h"

#include <algorithm>
#include <cmath>

namespace vqllm::serving {

namespace {

/** Log-normal sample around a median, clamped to [lo, hi]. */
std::size_t
sampleLength(Rng &rng, std::size_t median, double sigma, std::size_t lo,
             std::size_t hi)
{
    double x = static_cast<double>(median) *
               std::exp(sigma * rng.normal());
    auto n = static_cast<std::size_t>(std::llround(x));
    return std::clamp(n, lo, hi);
}

} // namespace

std::vector<Request>
generateWorkload(const WorkloadConfig &cfg)
{
    Rng rng(cfg.seed);
    auto group_weights =
        powerLawWeights(cfg.num_codebook_groups, cfg.group_zipf_alpha);

    std::vector<Request> trace;
    double now_us = 0;
    const double horizon_us = cfg.duration_s * 1e6;
    const double mean_gap_us = 1e6 / cfg.qps;
    while (true) {
        // Exponential inter-arrival gap (Poisson process).  uniform()
        // contracts [0, 1) but clamp anyway: a sample that rounds to
        // 1.0 would make the gap -log(0) = inf and silently truncate
        // the rest of the trace.
        double u = std::min(rng.uniform(), std::nextafter(1.0, 0.0));
        now_us += -std::log(1.0 - u) * mean_gap_us;
        if (now_us >= horizon_us)
            break;
        Request r;
        r.id = trace.size();
        r.arrival_us = now_us;
        r.prompt_len =
            sampleLength(rng, cfg.prompt_len_median, cfg.prompt_len_sigma,
                         cfg.prompt_len_min, cfg.prompt_len_max);
        r.max_new_tokens =
            sampleLength(rng, cfg.gen_tokens_median, cfg.gen_tokens_sigma,
                         cfg.gen_tokens_min, cfg.gen_tokens_max);
        r.codebook_group = rng.weightedIndex(group_weights);
        if (cfg.priority_levels > 1)
            r.priority = static_cast<int>(
                rng.uniformInt(cfg.priority_levels));
        if (cfg.prefix_groups > 0 && cfg.prefix_tokens > 0) {
            // The sampled prompt becomes the per-request tail behind
            // the group's shared system prompt.
            r.prefix_group = static_cast<std::int64_t>(
                rng.uniformInt(cfg.prefix_groups));
            r.prefix_tokens = cfg.prefix_tokens;
            r.prompt_len += cfg.prefix_tokens;
        }
        r.ttft_deadline_us = cfg.ttft_deadline_us;
        r.tbt_deadline_us = cfg.tbt_deadline_us;
        trace.push_back(r);
    }
    return trace;
}

} // namespace vqllm::serving
