#include "serving/request.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>

#include "common/logging.h"

namespace vqllm::serving {

namespace {

/** Log-normal sample around a median, clamped to [lo, hi]. */
std::size_t
sampleLength(Rng &rng, std::size_t median, double sigma, std::size_t lo,
             std::size_t hi)
{
    double x = static_cast<double>(median) *
               std::exp(sigma * rng.normal());
    auto n = static_cast<std::size_t>(std::llround(x));
    return std::clamp(n, lo, hi);
}

/** Parse one flat JSONL object of numeric fields ({"key": number,
 *  ...}); any deviation is a hard error naming the offending line. */
std::map<std::string, double>
parseTraceLine(const std::string &line, std::size_t lineno,
               const std::string &path)
{
    auto fail = [&](const char *what) {
        vqllm_fatal("malformed trace line ", lineno, " in ", path, " (",
                    what, "): ", line);
    };
    std::map<std::string, double> fields;
    const char *p = line.c_str();
    auto skip = [&] {
        while (*p != '\0' && std::isspace(static_cast<unsigned char>(*p)))
            ++p;
    };
    skip();
    if (*p != '{')
        fail("expected '{'");
    ++p;
    skip();
    if (*p == '}') {
        ++p;
    } else {
        while (true) {
            if (*p != '"')
                fail("expected quoted key");
            ++p;
            const char *key_begin = p;
            while (*p != '\0' && *p != '"')
                ++p;
            if (*p != '"')
                fail("unterminated key");
            std::string key(key_begin, p);
            ++p;
            skip();
            if (*p != ':')
                fail("expected ':'");
            ++p;
            skip();
            char *end = nullptr;
            double value = std::strtod(p, &end);
            if (end == p)
                fail("expected numeric value");
            p = end;
            if (!fields.emplace(key, value).second)
                fail("duplicate key");
            skip();
            if (*p == ',') {
                ++p;
                skip();
                continue;
            }
            if (*p == '}') {
                ++p;
                break;
            }
            fail("expected ',' or '}'");
        }
    }
    skip();
    if (*p != '\0')
        fail("trailing characters");
    return fields;
}

/** Non-negative integral field check for token counts and group ids. */
std::uint64_t
traceCount(double value, const char *key, std::size_t lineno,
           const std::string &path)
{
    if (!(value >= 0) || value != std::floor(value))
        vqllm_fatal("malformed trace line ", lineno, " in ", path,
                    ": field '", key,
                    "' must be a non-negative integer, got ", value);
    return static_cast<std::uint64_t>(value);
}

} // namespace

const char *
arrivalPatternName(ArrivalPattern p)
{
    switch (p) {
      case ArrivalPattern::Poisson: return "poisson";
      case ArrivalPattern::Bursty:  return "bursty";
      case ArrivalPattern::Diurnal: return "diurnal";
    }
    return "?";
}

std::optional<ArrivalPattern>
parseArrivalPattern(const std::string &s)
{
    if (s == "poisson")
        return ArrivalPattern::Poisson;
    if (s == "bursty")
        return ArrivalPattern::Bursty;
    if (s == "diurnal")
        return ArrivalPattern::Diurnal;
    return std::nullopt;
}

std::vector<Request>
loadWorkloadTrace(const WorkloadConfig &cfg)
{
    std::ifstream in(cfg.trace_path);
    if (!in)
        vqllm_fatal("cannot open workload trace ", cfg.trace_path);

    std::vector<Request> trace;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue; // blank line
        auto fields = parseTraceLine(line, lineno, cfg.trace_path);
        auto need = [&](const char *key) {
            auto it = fields.find(key);
            if (it == fields.end())
                vqllm_fatal("malformed trace line ", lineno, " in ",
                            cfg.trace_path, ": missing field '", key,
                            "'");
            return it->second;
        };
        Request r;
        double arrival = need("arrival_us");
        if (!(arrival >= 0) || !std::isfinite(arrival))
            vqllm_fatal("malformed trace line ", lineno, " in ",
                        cfg.trace_path,
                        ": 'arrival_us' must be finite and >= 0, got ",
                        arrival);
        r.arrival_us = arrival;
        r.prompt_len = static_cast<std::size_t>(traceCount(
            need("prompt_len"), "prompt_len", lineno, cfg.trace_path));
        r.max_new_tokens = static_cast<std::size_t>(traceCount(
            need("output_len"), "output_len", lineno, cfg.trace_path));
        if (r.prompt_len == 0 || r.max_new_tokens == 0)
            vqllm_fatal("malformed trace line ", lineno, " in ",
                        cfg.trace_path,
                        ": prompt_len and output_len must be positive");
        auto group = fields.find("group");
        if (group != fields.end())
            r.codebook_group = traceCount(group->second, "group", lineno,
                                          cfg.trace_path);
        r.ttft_deadline_us = cfg.ttft_deadline_us;
        r.tbt_deadline_us = cfg.tbt_deadline_us;
        trace.push_back(r);
    }

    // The simulator consumes arrival-ordered traces with ids 0..n-1;
    // stable sort keeps equal-arrival requests in file order.
    std::stable_sort(trace.begin(), trace.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrival_us < b.arrival_us;
                     });
    for (std::size_t i = 0; i < trace.size(); ++i)
        trace[i].id = i;
    return trace;
}

std::vector<Request>
generateWorkload(const WorkloadConfig &cfg)
{
    if (!cfg.trace_path.empty())
        return loadWorkloadTrace(cfg);

    Rng rng(cfg.seed);
    auto group_weights =
        powerLawWeights(cfg.num_codebook_groups, cfg.group_zipf_alpha);

    // Modulated patterns (bursty/diurnal) sample candidate arrivals at
    // the pattern's *peak* rate and thin each against the instantaneous
    // rate — the textbook construction for an inhomogeneous Poisson
    // process.  Plain Poisson takes peak == mean and skips the thinning
    // draw, so its RNG sequence (and every pre-pattern trace) is
    // bit-identical.
    double peak_qps = cfg.qps;
    if (cfg.arrival == ArrivalPattern::Bursty) {
        if (!(cfg.burst_period_s > 0))
            vqllm_fatal("burst_period_s must be positive, got ",
                        cfg.burst_period_s);
        if (!(cfg.burst_duty > 0 && cfg.burst_duty < 1))
            vqllm_fatal("burst_duty must lie in (0, 1), got ",
                        cfg.burst_duty);
        if (cfg.burst_peak < 1)
            vqllm_fatal("burst_peak must be >= 1, got ", cfg.burst_peak);
        if (cfg.burst_duty * cfg.burst_peak > 1)
            vqllm_fatal("burst_duty * burst_peak must be <= 1 so the "
                        "trough rate that preserves the mean stays "
                        "non-negative, got ",
                        cfg.burst_duty * cfg.burst_peak);
        peak_qps = cfg.qps * cfg.burst_peak;
    } else if (cfg.arrival == ArrivalPattern::Diurnal) {
        if (!(cfg.diurnal_period_s > 0))
            vqllm_fatal("diurnal_period_s must be positive, got ",
                        cfg.diurnal_period_s);
        if (!(cfg.diurnal_amplitude >= 0 && cfg.diurnal_amplitude < 1))
            vqllm_fatal("diurnal_amplitude must lie in [0, 1), got ",
                        cfg.diurnal_amplitude);
        peak_qps = cfg.qps * (1 + cfg.diurnal_amplitude);
    }
    auto rate_qps_at = [&cfg](double t_us) {
        switch (cfg.arrival) {
          case ArrivalPattern::Poisson:
            return cfg.qps;
          case ArrivalPattern::Bursty: {
            double phase = std::fmod(t_us / 1e6, cfg.burst_period_s);
            if (phase < cfg.burst_duty * cfg.burst_period_s)
                return cfg.qps * cfg.burst_peak;
            // Trough rate chosen so the cycle mean stays at qps.
            return cfg.qps * (1 - cfg.burst_duty * cfg.burst_peak) /
                   (1 - cfg.burst_duty);
          }
          case ArrivalPattern::Diurnal:
            return cfg.qps *
                   (1 + cfg.diurnal_amplitude *
                            std::sin(2.0 * 3.14159265358979323846 *
                                     t_us /
                                     (cfg.diurnal_period_s * 1e6)));
        }
        return cfg.qps;
    };

    std::vector<Request> trace;
    double now_us = 0;
    const double horizon_us = cfg.duration_s * 1e6;
    const double mean_gap_us = 1e6 / peak_qps;
    while (true) {
        // Exponential inter-arrival gap (Poisson process).  uniform()
        // contracts [0, 1) but clamp anyway: a sample that rounds to
        // 1.0 would make the gap -log(0) = inf and silently truncate
        // the rest of the trace.
        double u = std::min(rng.uniform(), std::nextafter(1.0, 0.0));
        now_us += -std::log(1.0 - u) * mean_gap_us;
        if (now_us >= horizon_us)
            break;
        if (cfg.arrival != ArrivalPattern::Poisson &&
            rng.uniform() * peak_qps >= rate_qps_at(now_us))
            continue; // thinned candidate
        Request r;
        r.id = trace.size();
        r.arrival_us = now_us;
        r.prompt_len =
            sampleLength(rng, cfg.prompt_len_median, cfg.prompt_len_sigma,
                         cfg.prompt_len_min, cfg.prompt_len_max);
        r.max_new_tokens =
            sampleLength(rng, cfg.gen_tokens_median, cfg.gen_tokens_sigma,
                         cfg.gen_tokens_min, cfg.gen_tokens_max);
        r.codebook_group = rng.weightedIndex(group_weights);
        if (cfg.priority_levels > 1)
            r.priority = static_cast<int>(
                rng.uniformInt(cfg.priority_levels));
        if (cfg.prefix_groups > 0 && cfg.prefix_tokens > 0) {
            // The sampled prompt becomes the per-request tail behind
            // the group's shared system prompt.
            r.prefix_group = static_cast<std::int64_t>(
                rng.uniformInt(cfg.prefix_groups));
            r.prefix_tokens = cfg.prefix_tokens;
            r.prompt_len += cfg.prefix_tokens;
        }
        r.ttft_deadline_us = cfg.ttft_deadline_us;
        r.tbt_deadline_us = cfg.tbt_deadline_us;
        trace.push_back(r);
    }
    return trace;
}

} // namespace vqllm::serving
