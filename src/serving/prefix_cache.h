/**
 * @file
 * Cross-request KV prefix cache over the paged block pools.
 *
 * Requests that share a prefix (a tenant's system prompt, a few-shot
 * preamble) should not prefill it more than once.  The cache indexes
 * resident KV blocks at token-block granularity with a hash *chain*:
 * node i's key hashes (parent key, prefix group, block index, block
 * tokens), so equal chains of blocks collapse to equal keys and a
 * lookup is a radix-style longest-match walk from the root — O(matched
 * blocks), no token comparison.  A hit maps the matched blocks into the
 * new sequence as shared ref-counted blocks (ShardedKvPool::
 * attachSequence, identical on every TP shard) and the scheduler
 * prefills only the unmatched suffix.
 *
 * Lifecycle: as a request's prefill advances past block boundaries
 * inside its declared prefix, the cache inserts nodes referencing the
 * just-written blocks (raising their refcounts, so the blocks outlive
 * the writer).  A prefix whose length is not block-aligned ends in a
 * *partial* node backed by a cache-owned block (allocCacheBlocks); a
 * sequence attached through a partial node copy-on-write forks it on
 * its first divergent write (KvBlockPool handles the fork; the cache's
 * copy is untouched).
 *
 * Eviction is hit-aware LFU with masked pins, the CodebookResidency
 * discipline: only leaf nodes (children == 0) whose block no running
 * sequence references (shard-0 refcount == 1, i.e. the cache holds the
 * only reference) are candidates; the victim is the minimum (freq,
 * insertion id).  Eviction triggers on the node-count capacity at
 * insert time and — via the pool's reclaimer hook — under allocation
 * pressure, so cached prefixes never starve admissions: the pool asks
 * the cache to surrender blocks before failing, and the paired
 * reclaimable query folds evictable blocks into capacity estimates.
 *
 * Everything is deterministic: keys chain FNV-1a, scans walk a std::map
 * keyed by insertion id, and the pool's LIFO id reuse keeps block
 * identities reproducible — cache-on runs are bit-identical across
 * host thread counts.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "serving/request.h"
#include "serving/sharded_kv_pool.h"

namespace vqllm::obs {
class TraceRecorder;
class MetricsRegistry;
}

namespace vqllm::serving {

/** Static parameters of the prefix cache. */
struct PrefixCacheConfig
{
    /** Tokens per block; must match the KV pools'. */
    std::size_t block_tokens = 16;
    /** Max cached nodes (= blocks per shard); 0 = bounded only by
     *  pool pressure via the reclaimer. */
    std::uint64_t capacity_blocks = 0;
};

/** Lifetime counters of the prefix cache. */
struct PrefixCacheStats
{
    /** Prefix-bearing requests looked up. */
    std::uint64_t lookups = 0;
    /** Lookups that matched at least one block. */
    std::uint64_t hits = 0;
    /** Prompt tokens served from cache instead of prefill. */
    std::uint64_t matched_tokens = 0;
    std::uint64_t inserted_nodes = 0;
    std::uint64_t evicted_nodes = 0;
    /** Blocks surrendered to the pool's reclaimer under pressure
     *  (subset of evicted_nodes). */
    std::uint64_t reclaimed_blocks = 0;
    /** Insertions skipped (pool full, capacity pinned, or orphaned
     *  parent). */
    std::uint64_t skipped_inserts = 0;
    /** Attaches reverted because the unmatched suffix could not get a
     *  first slice (hits/matched_tokens are taken back). */
    std::uint64_t rollbacks = 0;
};

/**
 * Block-granular prefix index over a ShardedKvPool.
 *
 * The scheduler drives it: match() before admission, attach() on a hit
 * (or rollbackAttach() if admission then stalls), onPrefillAdvance()
 * after every prefill slice, onRelease() at retire/preempt.  The
 * constructor registers the cache as the pool's reclaimer; the
 * destructor drops every cached reference and unregisters.
 */
class PrefixCache
{
  public:
    PrefixCache(ShardedKvPool &pool, const PrefixCacheConfig &cfg);
    ~PrefixCache();

    PrefixCache(const PrefixCache &) = delete;
    PrefixCache &operator=(const PrefixCache &) = delete;

    /** Longest-match result: the matched token count and the node
     *  chain backing it (root-to-leaf order). */
    struct Match
    {
        std::size_t tokens = 0;
        std::vector<std::uint64_t> node_hashes;
    };

    /** Longest cached prefix of the request's prompt.  Matches at most
     *  prompt_len - 1 tokens so every request prefills at least one
     *  token (attention needs a query). */
    Match match(const Request &r);

    /** Map a match's blocks into the request's sequence on every shard
     *  (no free blocks consumed) and count the hit. */
    void attach(const Request &r, const Match &m);

    /** Revert attach(): the request could not take a prefill slice
     *  this iteration, so it is not admitted after all. */
    void rollbackAttach(const Request &r, const Match &m);

    /** Index the blocks a prefill slice just completed (call after
     *  every slice, including the admitting one). */
    void onPrefillAdvance(const Request &r);

    /** Forget per-request insertion progress (retire or preempt). */
    void onRelease(std::uint64_t seq_id);

    /** Pool pressure hook: evict cold unpinned nodes until
     *  `need_blocks` per-shard blocks are freed or none qualify. */
    void reclaim(std::uint64_t need_blocks);

    /** @return per-shard blocks reclaim() could free right now
     *  (unpinned leaves; a conservative undercount of whole evictable
     *  chains). */
    std::uint64_t evictableBlocks() const;

    /** Drop every cached reference (end of run; enables the pool-level
     *  leak check). */
    void clear();

    /** @return cached nodes == cached blocks per shard. */
    std::uint64_t cachedBlocks() const { return by_id_.size(); }

    /** @return tokens the cached nodes store (per shard). */
    std::size_t cachedTokens() const { return cached_tokens_; }

    const PrefixCacheStats &stats() const { return stats_; }
    const PrefixCacheConfig &config() const { return cfg_; }

    /** Attach a trace recorder (nullptr = off): prefix_hit /
     *  prefix_rollback / prefix_evict record as instants. */
    void setTrace(obs::TraceRecorder *trace) { trace_ = trace; }

    /** Publish counters and occupancy under `<prefix>.`-qualified
     *  names (e.g. `serving.kv.prefix`). */
    void exportMetrics(obs::MetricsRegistry &registry,
                       const std::string &prefix) const;

  private:
    struct Node
    {
        /** Insertion order (1-based); eviction tie-break and scan
         *  order.  Parents always precede children. */
        std::uint64_t id = 0;
        std::uint64_t hash = 0;
        /** Parent node's hash; 0 = root. */
        std::uint64_t parent = 0;
        std::uint32_t children = 0;
        /** Tokens this node stores (block_tokens, or less for a
         *  partial tail). */
        std::uint32_t tokens = 0;
        /** Backed by a cache-owned block (partial tail) rather than a
         *  writer sequence's block. */
        bool partial = false;
        /** Hit-aware LFU frequency. */
        std::uint64_t freq = 0;
        /** One block per shard. */
        std::vector<BlockId> blocks;
    };

    static std::uint64_t chainHash(std::uint64_t parent,
                                   std::int64_t group,
                                   std::size_t index,
                                   std::size_t tokens);

    bool insertNode(const Request &r, std::size_t index,
                    std::uint64_t hash, std::uint64_t parent,
                    std::size_t tokens, bool partial);
    bool evictOne(bool reclaiming);
    void eraseNode(std::uint64_t hash);

    ShardedKvPool &pool_;
    PrefixCacheConfig cfg_;
    std::unordered_map<std::uint64_t, Node> nodes_;
    /** Insertion id -> node hash; deterministic scan order for
     *  eviction and clear(). */
    std::map<std::uint64_t, std::uint64_t> by_id_;
    /** Per-request insertion progress: prefix tokens already indexed
     *  (or attached) for an in-flight sequence. */
    std::unordered_map<std::uint64_t, std::size_t> inserted_;
    std::size_t cached_tokens_ = 0;
    std::uint64_t next_node_id_ = 1;
    PrefixCacheStats stats_;
    obs::TraceRecorder *trace_ = nullptr;
};

} // namespace vqllm::serving
