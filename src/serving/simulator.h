/**
 * @file
 * Serving simulator: the event loop tying workload, scheduler, KV block
 * pool, codebook residency and the iteration pricer together.
 *
 * The clock is iteration-driven: the simulator delivers arrivals, asks
 * the scheduler for the next iteration (mixed prefill slices + decode
 * steps under chunked prefill), prices it (kernel latencies plus
 * codebook-upload penalties for residency misses), advances simulated
 * time by that latency, and records metrics.  The slice completing a
 * (re)prefill emits one token — the first token of a fresh prefill
 * (TTFT) or, after a preemption recompute, the next token (the stall
 * lands in that TBT sample); every decode step emits one token per
 * running sequence (TBT).  The run ends when every request of the
 * finite trace has finished or been rejected — reports therefore cover
 * complete traces, never a truncated tail.
 *
 * Determinism: given one SimulatorConfig (including the workload seed)
 * two runs produce bit-identical reports.
 */
#pragma once

#include <memory>
#include <optional>

#include "gpusim/gpu_spec.h"
#include "llm/model_config.h"
#include "llm/tensor_parallel.h"
#include "serving/metrics.h"
#include "serving/request.h"
#include "serving/scheduler.h"
#include "serving/sharded_kv_pool.h"

namespace vqllm::compiler {
class Engine;
}

namespace vqllm::obs {
class MetricsRegistry;
class TraceRecorder;
}

namespace vqllm::serving {

struct SimulatorConfig;

/**
 * KV bytes one device's pool gets under @p cfg: per-GPU HBM minus the
 * device's weight shard minus the activation reserve.  Fatal when the
 * shard alone exceeds the budget.  Shared by ServingSimulator and
 * SimulatorCore so capacity accounting cannot drift between them.
 */
std::uint64_t kvCapacityPerDeviceBytes(const SimulatorConfig &cfg,
                                       const llm::LlamaConfig &model);

/** Full parameterization of one serving simulation. */
struct SimulatorConfig
{
    llm::QuantScheme scheme = llm::QuantScheme::VQ2;

    /**
     * KV-cache storage scheme, decoupled from the weight scheme:
     * blocks shrink by the scheme's compression factor (the pool holds
     * 1/scale more resident tokens at equal bytes) and decode
     * attention prices the matching dequant path (fused VQ
     * dequant-attention kernels for VQ4/VQ2).  Unset (the default)
     * follows the weight scheme via llm::defaultKvScheme — the
     * pre-KvScheme behaviour, bit-identical reports included.
     */
    std::optional<llm::KvScheme> kv_scheme;

    const gpusim::GpuSpec *spec = nullptr;   ///< default: rtx4090()
    const llm::LlamaConfig *model = nullptr; ///< default: llama7b()

    /**
     * Compile engine pricing the iterations.  nullptr (default): the
     * run constructs a private engine, so its report's plan-cache
     * counters describe exactly this run and concurrent runMany sims
     * stay independent.  Injecting a shared engine keeps its kernel
     * cache warm across runs (steady-state pricing is then cache hits
     * from iteration one); the report's cache counters are the delta
     * observed by this run, which double-counts under concurrent runs
     * sharing one engine.
     */
    compiler::Engine *engine = nullptr;

    /**
     * Persistent kernel-cache directory ("" = off, the default).  When
     * set, the run opens (or creates) a `compiler::DiskCache` there
     * and attaches it to its engine as a read-through/write-behind
     * second tier: compiled-kernel artifacts persist across processes,
     * so a warm directory prices from disk with zero recompiles and a
     * bit-identical report.  Replicas/sims naming the same directory
     * share one store (see DiskCache::open).  The report itself never
     * reflects disk state, so cache-off output is byte-identical.
     */
    std::string kernel_cache_dir;

    /**
     * Tensor parallelism: degree > 1 serves the model sharded across
     * that many identical GPUs (head-sharded attention, column/row
     * -parallel linears, two ring all-reduces per layer priced into
     * every decode step and prefill chunk) with one KV pool per device
     * behind a ShardedKvPool.  Weights shard by the degree, so each
     * device's pool gets hbm_gb minus its weight shard minus the
     * reserve.  Degree 1 is the single-GPU path, bit-identical to a
     * config without this member.
     */
    llm::TpConfig tp;

    WorkloadConfig workload;
    SchedulerConfig scheduler;
    PricerConfig pricer;

    /** Per-GPU HBM capacity, GB (24 matches the RTX 4090). */
    double hbm_gb = 24.0;
    /** HBM held back for activations and scratch, GB. */
    double hbm_reserve_gb = 1.0;
    /** Tokens per KV block (paged-attention page size). */
    std::size_t kv_block_tokens = 16;
    /** Codebook-group residency slots (hit-aware LFU capacity). */
    std::size_t codebook_slots = 48;

    /**
     * Cross-request KV prefix caching: index prefix-bearing prompts at
     * block granularity, map matches in as shared ref-counted blocks
     * and prefill only the unmatched suffix (serving/prefix_cache.h).
     * Off (the default) runs the exact pre-cache code path — the
     * report is bit-identical to a build without the cache.
     */
    bool prefix_cache = false;
    /** Prefix-cache capacity, cached blocks per shard (0 = bounded
     *  only by KV pool pressure via the reclaimer). */
    std::uint64_t prefix_capacity_blocks = 0;

    /**
     * Optional trace recorder (nullptr = tracing off, the default).
     * A traced run records scheduler iterations, prefill chunks,
     * decode batches, all-reduces, codebook uploads, KV pool events,
     * preemptions and plan-cache compiles on the simulated clock; the
     * ServingReport is bit-identical with tracing on or off.  The
     * recorder must outlive the run; its clock is overwritten.
     */
    obs::TraceRecorder *trace = nullptr;

    /**
     * Optional metrics registry (nullptr = off, the default).  The run
     * streams latency/token metrics into it live and publishes every
     * component's counters (`serving.kv.*`, `serving.codebook.*`,
     * `compiler.plan_cache.*`, busy-time breakdown gauges) when the
     * run completes.
     */
    obs::MetricsRegistry *metrics = nullptr;
};

/**
 * Runs one serving simulation to completion.
 *
 * The KV pool capacity is what the scheme leaves free: HBM minus the
 * scheme's weight footprint minus the activation reserve — so a
 * quantized scheme gains twice, from smaller weights and from fewer KV
 * bytes per token.  Under TP each device pays only its weight shard,
 * so aggregate KV capacity grows superlinearly with the degree.
 */
class ServingSimulator
{
  public:
    explicit ServingSimulator(const SimulatorConfig &cfg);

    /** Generate the workload from cfg and run it. */
    ServingReport run();

    /** Run an explicit trace (must be arrival-sorted). */
    ServingReport run(std::vector<Request> &trace);

    /**
     * Run independent simulations concurrently on the host runtime
     * (capacity sweeps, scheme comparisons).  Each simulation is
     * sequential and deterministic internally, so the reports are
     * bit-identical to serial back-to-back runs and returned in config
     * order.
     */
    static std::vector<ServingReport>
    runMany(const std::vector<SimulatorConfig> &configs);

    /**
     * runMany with per-simulation metrics: creates one private
     * MetricsRegistry per config (overriding any registry already set
     * in the config — concurrent sims must not share one), runs the
     * sims, and returns the registries through @p registries in config
     * order.  Fleet benches use this to aggregate `serving.*` metrics
     * per replica without serializing the fan-out.
     */
    static std::vector<ServingReport>
    runMany(const std::vector<SimulatorConfig> &configs,
            std::vector<std::unique_ptr<obs::MetricsRegistry>>
                *registries);

    /** @return KV bytes available to the pools under this config,
     *  summed over the TP shards. */
    std::uint64_t kvCapacityBytes() const { return kv_capacity_bytes_; }

    /** @return KV bytes available to one device's pool. */
    std::uint64_t
    kvCapacityBytesPerDevice() const
    {
        return kv_capacity_per_device_;
    }

  private:
    SimulatorConfig cfg_;
    const gpusim::GpuSpec &spec_;
    const llm::LlamaConfig &model_;
    std::uint64_t kv_capacity_bytes_ = 0;
    std::uint64_t kv_capacity_per_device_ = 0;
};

} // namespace vqllm::serving
