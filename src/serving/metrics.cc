#include "serving/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "obs/metrics.h"

namespace vqllm::serving {

namespace {

/** %.17g — shortest representation that round-trips a double. */
std::string
jsonDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonU64(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

void
writeLatency(std::ostream &os, const char *name, const LatencyStats &s)
{
    os << "\"" << name << "\":{\"count\":" << s.count
       << ",\"mean_us\":" << jsonDouble(s.mean_us)
       << ",\"p50_us\":" << jsonDouble(s.p50_us)
       << ",\"p95_us\":" << jsonDouble(s.p95_us)
       << ",\"p99_us\":" << jsonDouble(s.p99_us)
       << ",\"max_us\":" << jsonDouble(s.max_us) << "}";
}

} // namespace

double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1)
        return sorted.front();
    q = std::clamp(q, 0.0, 1.0);
    double rank = q * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(std::floor(rank));
    auto hi = static_cast<std::size_t>(std::ceil(rank));
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

MetricsCollector::MetricsCollector(obs::MetricsRegistry *registry)
{
    if (registry == nullptr)
        return;
    // Latency populations span ~1us..minutes; 2x log buckets from 1us
    // keep relative error bounded across that range.
    h_ttft_ = &registry->histogram("serving.latency.ttft_us");
    h_tbt_ = &registry->histogram("serving.latency.tbt_us");
    h_e2e_ = &registry->histogram("serving.latency.e2e_us");
    c_decode_tokens_ = &registry->counter("serving.tokens.decode");
    c_prefill_tokens_ = &registry->counter("serving.tokens.prefill");
    c_preemptions_ = &registry->counter("serving.preemptions");
}

void
MetricsCollector::recordTtft(double us)
{
    ttft_us_.push_back(us);
    if (h_ttft_)
        h_ttft_->record(us);
}

void
MetricsCollector::recordTbt(double us)
{
    tbt_us_.push_back(us);
    if (h_tbt_)
        h_tbt_->record(us);
}

void
MetricsCollector::recordE2e(double us)
{
    e2e_us_.push_back(us);
    if (h_e2e_)
        h_e2e_->record(us);
}

void
MetricsCollector::recordDecodeTokens(std::uint64_t n)
{
    decode_tokens_ += n;
    if (c_decode_tokens_)
        c_decode_tokens_->add(n);
}

void
MetricsCollector::recordPrefillTokens(std::uint64_t n)
{
    prefill_tokens_ += n;
    if (c_prefill_tokens_)
        c_prefill_tokens_->add(n);
}

void
MetricsCollector::recordPreemption()
{
    ++preemptions_;
    if (c_preemptions_)
        c_preemptions_->add();
}

LatencyStats
summarize(std::vector<double> samples)
{
    LatencyStats s;
    if (samples.empty())
        return s;
    std::sort(samples.begin(), samples.end());
    s.count = samples.size();
    s.mean_us = std::accumulate(samples.begin(), samples.end(), 0.0) /
                static_cast<double>(samples.size());
    s.p50_us = percentile(samples, 0.50);
    s.p95_us = percentile(samples, 0.95);
    s.p99_us = percentile(samples, 0.99);
    s.max_us = samples.back();
    return s;
}

std::string
ServingReport::summary() const
{
    char buf[1024];
    auto line = [](const char *name, const LatencyStats &s) {
        char b[192];
        std::snprintf(b, sizeof(b),
                      "  %-5s p50 %9.1f ms  p95 %9.1f ms  p99 %9.1f ms"
                      "  (n=%zu)\n",
                      name, s.p50_us / 1e3, s.p95_us / 1e3,
                      s.p99_us / 1e3, s.count);
        return std::string(b);
    };
    std::string out;
    out += line("TTFT", ttft);
    out += line("TBT", tbt);
    out += line("E2E", e2e);
    std::snprintf(buf, sizeof(buf),
                  "  throughput %.1f tok/s busy, %.1f s busy of %.1f s "
                  "simulated (util %.1f%%)\n"
                  "  completed %llu, rejected %llu, preemptions %llu, "
                  "iterations %llu\n"
                  "  KV high-water %.2f GB of %.2f GB, codebook hit rate "
                  "%.1f%%\n",
                  tokens_per_sec, busy_time_us / 1e6, sim_time_us / 1e6,
                  utilization * 100.0,
                  static_cast<unsigned long long>(completed_requests),
                  static_cast<unsigned long long>(rejected_requests),
                  static_cast<unsigned long long>(preemptions),
                  static_cast<unsigned long long>(iterations),
                  static_cast<double>(kv_peak_bytes) / 1e9,
                  static_cast<double>(kv_capacity_bytes) / 1e9,
                  codebook_hit_rate * 100.0);
    out += buf;
    if (busy_time_us > 0) {
        std::snprintf(
            buf, sizeof(buf),
            "  busy breakdown: prefill %.1f%%, decode %.1f%%, "
            "comm %.1f%%, codebook upload %.1f%%\n",
            prefill_us / busy_time_us * 100.0,
            decode_us / busy_time_us * 100.0,
            comm_us / busy_time_us * 100.0,
            codebook_upload_us / busy_time_us * 100.0);
        out += buf;
    }
    if (prefix_cache_enabled) {
        std::snprintf(
            buf, sizeof(buf),
            "  prefix cache %.1f%% of prefill demand served from cache "
            "(%llu tokens saved, %llu/%llu hits/lookups, %llu COW "
            "forks, %llu blocks evicted)\n",
            prefix_hit_rate * 100.0,
            static_cast<unsigned long long>(prefix_matched_tokens),
            static_cast<unsigned long long>(prefix_hits),
            static_cast<unsigned long long>(prefix_lookups),
            static_cast<unsigned long long>(cow_forks),
            static_cast<unsigned long long>(prefix_evicted_blocks));
        out += buf;
    }
    if (kv_scheme != "fp16") {
        std::snprintf(
            buf, sizeof(buf),
            "  KV scheme %s: %llu bytes/token (%.2fx capacity vs FP16), "
            "attn delta %+.2f s, peak running %llu seqs\n",
            kv_scheme.c_str(),
            static_cast<unsigned long long>(kv_bytes_per_token),
            kv_capacity_multiplier, kv_dequant_us / 1e6,
            static_cast<unsigned long long>(peak_running_seqs));
        out += buf;
    }
    if (plan_cache_hits + plan_cache_misses > 0) {
        std::snprintf(buf, sizeof(buf),
                      "  plan cache %.1f%% hits (%llu of %llu lookups)\n",
                      planCacheHitRate() * 100.0,
                      static_cast<unsigned long long>(plan_cache_hits),
                      static_cast<unsigned long long>(plan_cache_hits +
                                                      plan_cache_misses));
        out += buf;
    }
    if (tp_degree > 1) {
        std::snprintf(buf, sizeof(buf),
                      "  tensor parallel degree %llu, collectives %.2f s "
                      "(%.1f%% of busy time)\n",
                      static_cast<unsigned long long>(tp_degree),
                      comm_us / 1e6, comm_fraction * 100.0);
        out += buf;
        for (std::size_t i = 0; i < shards.size(); ++i) {
            const ShardReport &s = shards[i];
            std::snprintf(
                buf, sizeof(buf),
                "    shard %zu: KV peak %.2f GB of %.2f GB (%.1f%%), "
                "plan cache %llu/%llu hits/misses\n",
                i, static_cast<double>(s.kv_peak_bytes) / 1e9,
                static_cast<double>(s.kv_capacity_bytes) / 1e9,
                s.kvPeakFraction() * 100.0,
                static_cast<unsigned long long>(s.plan_cache_hits),
                static_cast<unsigned long long>(s.plan_cache_misses));
            out += buf;
        }
    }
    return out;
}

std::string
ServingReport::json() const
{
    std::ostringstream os;
    os << "{";
    writeLatency(os, "ttft", ttft);
    os << ",";
    writeLatency(os, "tbt", tbt);
    os << ",";
    writeLatency(os, "e2e", e2e);
    os << ",\"sim_time_us\":" << jsonDouble(sim_time_us)
       << ",\"busy_time_us\":" << jsonDouble(busy_time_us)
       << ",\"utilization\":" << jsonDouble(utilization)
       << ",\"tokens_per_sec\":" << jsonDouble(tokens_per_sec)
       << ",\"completed_requests\":" << jsonU64(completed_requests)
       << ",\"rejected_requests\":" << jsonU64(rejected_requests)
       << ",\"preemptions\":" << jsonU64(preemptions)
       << ",\"decode_tokens\":" << jsonU64(decode_tokens)
       << ",\"prefill_tokens\":" << jsonU64(prefill_tokens)
       << ",\"iterations\":" << jsonU64(iterations)
       << ",\"tp_degree\":" << jsonU64(tp_degree)
       << ",\"comm_us\":" << jsonDouble(comm_us)
       << ",\"comm_fraction\":" << jsonDouble(comm_fraction)
       << ",\"prefill_us\":" << jsonDouble(prefill_us)
       << ",\"decode_us\":" << jsonDouble(decode_us)
       << ",\"codebook_upload_us\":" << jsonDouble(codebook_upload_us)
       << ",\"kv_peak_bytes\":" << jsonU64(kv_peak_bytes)
       << ",\"kv_capacity_bytes\":" << jsonU64(kv_capacity_bytes)
       << ",\"codebook_hit_rate\":" << jsonDouble(codebook_hit_rate)
       << ",\"plan_cache_hits\":" << jsonU64(plan_cache_hits)
       << ",\"plan_cache_misses\":" << jsonU64(plan_cache_misses)
       << ",\"plan_cache_evictions\":" << jsonU64(plan_cache_evictions);
    if (prefix_cache_enabled) {
        // Emitted only when the cache served the run: cache-off
        // reports stay byte-identical to pre-cache builds.
        os << ",\"prefix_cache\":{\"lookups\":" << jsonU64(prefix_lookups)
           << ",\"hits\":" << jsonU64(prefix_hits)
           << ",\"matched_tokens\":" << jsonU64(prefix_matched_tokens)
           << ",\"evicted_blocks\":" << jsonU64(prefix_evicted_blocks)
           << ",\"cached_blocks\":" << jsonU64(prefix_cached_blocks)
           << ",\"cow_forks\":" << jsonU64(cow_forks)
           << ",\"hit_rate\":" << jsonDouble(prefix_hit_rate) << "}";
    }
    if (kv_scheme != "fp16") {
        // Emitted only for compressed KV: FP16-KV reports stay
        // byte-identical to pre-KvScheme builds.
        os << ",\"kv_scheme\":{\"scheme\":\"" << kv_scheme << "\""
           << ",\"bytes_per_token\":" << jsonU64(kv_bytes_per_token)
           << ",\"capacity_multiplier\":"
           << jsonDouble(kv_capacity_multiplier)
           << ",\"dequant_us\":" << jsonDouble(kv_dequant_us)
           << ",\"peak_running_seqs\":" << jsonU64(peak_running_seqs)
           << "}";
    }
    os << ",\"shards\":[";
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const ShardReport &s = shards[i];
        if (i > 0)
            os << ",";
        os << "{\"kv_peak_bytes\":" << jsonU64(s.kv_peak_bytes)
           << ",\"kv_capacity_bytes\":" << jsonU64(s.kv_capacity_bytes)
           << ",\"plan_cache_hits\":" << jsonU64(s.plan_cache_hits)
           << ",\"plan_cache_misses\":" << jsonU64(s.plan_cache_misses)
           << "}";
    }
    os << "]}";
    return os.str();
}

} // namespace vqllm::serving
