#include "serving/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace vqllm::serving {

double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1)
        return sorted.front();
    q = std::clamp(q, 0.0, 1.0);
    double rank = q * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(std::floor(rank));
    auto hi = static_cast<std::size_t>(std::ceil(rank));
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

LatencyStats
summarize(std::vector<double> samples)
{
    LatencyStats s;
    if (samples.empty())
        return s;
    std::sort(samples.begin(), samples.end());
    s.count = samples.size();
    s.mean_us = std::accumulate(samples.begin(), samples.end(), 0.0) /
                static_cast<double>(samples.size());
    s.p50_us = percentile(samples, 0.50);
    s.p95_us = percentile(samples, 0.95);
    s.p99_us = percentile(samples, 0.99);
    s.max_us = samples.back();
    return s;
}

std::string
ServingReport::summary() const
{
    char buf[1024];
    auto line = [](const char *name, const LatencyStats &s) {
        char b[192];
        std::snprintf(b, sizeof(b),
                      "  %-5s p50 %9.1f ms  p95 %9.1f ms  p99 %9.1f ms"
                      "  (n=%zu)\n",
                      name, s.p50_us / 1e3, s.p95_us / 1e3,
                      s.p99_us / 1e3, s.count);
        return std::string(b);
    };
    std::string out;
    out += line("TTFT", ttft);
    out += line("TBT", tbt);
    out += line("E2E", e2e);
    std::snprintf(buf, sizeof(buf),
                  "  throughput %.1f tok/s busy, %.1f s busy of %.1f s "
                  "simulated (util %.1f%%)\n"
                  "  completed %llu, rejected %llu, preemptions %llu, "
                  "iterations %llu\n"
                  "  KV high-water %.2f GB of %.2f GB, codebook hit rate "
                  "%.1f%%\n",
                  tokens_per_sec, busy_time_us / 1e6, sim_time_us / 1e6,
                  utilization * 100.0,
                  static_cast<unsigned long long>(completed_requests),
                  static_cast<unsigned long long>(rejected_requests),
                  static_cast<unsigned long long>(preemptions),
                  static_cast<unsigned long long>(iterations),
                  static_cast<double>(kv_peak_bytes) / 1e9,
                  static_cast<double>(kv_capacity_bytes) / 1e9,
                  codebook_hit_rate * 100.0);
    out += buf;
    if (plan_cache_hits + plan_cache_misses > 0) {
        std::snprintf(buf, sizeof(buf),
                      "  plan cache %.1f%% hits (%llu of %llu lookups)\n",
                      planCacheHitRate() * 100.0,
                      static_cast<unsigned long long>(plan_cache_hits),
                      static_cast<unsigned long long>(plan_cache_hits +
                                                      plan_cache_misses));
        out += buf;
    }
    if (tp_degree > 1) {
        std::snprintf(buf, sizeof(buf),
                      "  tensor parallel degree %llu, collectives %.2f s "
                      "(%.1f%% of busy time)\n",
                      static_cast<unsigned long long>(tp_degree),
                      comm_us / 1e6, comm_fraction * 100.0);
        out += buf;
        for (std::size_t i = 0; i < shards.size(); ++i) {
            const ShardReport &s = shards[i];
            std::snprintf(
                buf, sizeof(buf),
                "    shard %zu: KV peak %.2f GB of %.2f GB (%.1f%%), "
                "plan cache %llu/%llu hits/misses\n",
                i, static_cast<double>(s.kv_peak_bytes) / 1e9,
                static_cast<double>(s.kv_capacity_bytes) / 1e9,
                s.kvPeakFraction() * 100.0,
                static_cast<unsigned long long>(s.plan_cache_hits),
                static_cast<unsigned long long>(s.plan_cache_misses));
            out += buf;
        }
    }
    return out;
}

} // namespace vqllm::serving
