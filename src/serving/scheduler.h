/**
 * @file
 * Continuous-batching scheduler and iteration pricer.
 *
 * The scheduler owns the waiting/running queues and forms one
 * *iteration* at a time, vLLM-style: prefill-prioritized admission in
 * strict arrival order (an iteration is either a prefill batch or one
 * decode step for every running sequence), KV block accounting through
 * KvBlockPool, and recompute-style preemption — when a decode step
 * cannot take a fresh block, the latest-arrived running sequence loses
 * its blocks and re-queues for a future re-prefill.
 *
 * IterationPricer turns a formed iteration into simulated microseconds
 * by calling the same machinery the end-to-end model uses
 * (llm::schemeLinearUs / schemeAttentionUs, which plan adaptive VQ
 * kernels via engine::planWeightKernel / planAttentionKernel and price
 * them with gpusim::CostModel).  Decode attention is priced per
 * context-length bucket — mirroring flash-decoding's homogeneous
 * sub-launches over a ragged batch — and every price is memoized on the
 * bucketed shape, which keeps a multi-minute simulation to a few
 * thousand planner invocations.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "gpusim/gpu_spec.h"
#include "llm/model_config.h"
#include "serving/kv_block_pool.h"
#include "serving/request.h"

namespace vqllm::serving {

/** Batch-formation limits. */
struct SchedulerConfig
{
    /** Maximum concurrently running (decoding) sequences. */
    std::size_t max_batch = 64;
    /** Prompt-token budget of one prefill iteration.  A single prompt
     *  longer than the budget is still admitted alone. */
    std::size_t max_prefill_tokens = 4096;
};

/**
 * Forms per-iteration batches over the request queues.
 *
 * All queue order is by arrival time (FCFS); preempted sequences
 * re-enter the waiting queue at their original arrival position, so
 * they are re-admitted ahead of younger requests.
 */
class Scheduler
{
  public:
    Scheduler(const SchedulerConfig &cfg, KvBlockPool &pool);

    /** One scheduled iteration (either prefill or decode, never both). */
    struct Iteration
    {
        /** Requests (re)prefilled this iteration. */
        std::vector<Request *> prefill;
        /** Requests decoding one token this iteration. */
        std::vector<Request *> decode;
        /** Preemptions triggered while forming the iteration. */
        std::size_t preempted = 0;

        bool
        empty() const
        {
            return prefill.empty() && decode.empty();
        }
    };

    /**
     * Enqueue an arrived request.  Requests whose full context
     * (prompt + max_new_tokens) can never fit in the pool are rejected
     * immediately (state -> Rejected) — admitting them would livelock
     * the preemption loop.
     */
    void submit(Request *r);

    /** Form the next iteration (empty when no work is schedulable). */
    Iteration next();

    /** Retire a finished request: release its KV blocks. */
    void retire(Request *r);

    /** @return true when no request is waiting or running. */
    bool
    idle() const
    {
        return waiting_.empty() && running_.empty();
    }

    std::size_t waitingCount() const { return waiting_.size(); }
    std::size_t runningCount() const { return running_.size(); }
    std::uint64_t rejectedCount() const { return rejected_; }
    const std::vector<Request *> &running() const { return running_; }

  private:
    void preempt(Request *r);
    void requeue(Request *r);

    SchedulerConfig cfg_;
    KvBlockPool &pool_;
    /** Arrival-ordered arrival queue (front = oldest). */
    std::deque<Request *> waiting_;
    /** Arrival-ordered running set. */
    std::vector<Request *> running_;
    std::uint64_t rejected_ = 0;
};

/** Tunables of the iteration pricer. */
struct PricerConfig
{
    /** Context-length bucket for attention memoization, tokens. */
    std::size_t seq_bucket = 256;
    /** Host->device bandwidth for codebook-group uploads, GB/s. */
    double upload_gbps = 32.0;
    /** Fixed per-upload latency (launch + synchronization), us. */
    double upload_fixed_us = 10.0;
};

/**
 * Prices scheduler iterations in simulated microseconds.
 *
 * Not thread-safe (memo tables); create one per simulator.
 */
class IterationPricer
{
  public:
    IterationPricer(const gpusim::GpuSpec &spec,
                    const llm::LlamaConfig &model,
                    llm::QuantScheme scheme,
                    const PricerConfig &cfg = PricerConfig{});

    /** Full-stack prefill latency of one request's context. */
    double prefillUs(std::size_t prompt_tokens);

    /** One decode iteration over the batch's current contexts. */
    double decodeUs(const std::vector<Request *> &batch);

    /** Upload penalty for codebook-residency misses (0 for schemes
     *  without codebooks). */
    double codebookMissUs(std::size_t misses) const;

    /** Bytes of one codebook group (all layers' KV codebooks). */
    std::uint64_t codebookGroupBytes() const;

    llm::QuantScheme scheme() const { return scheme_; }

  private:
    double decodeLinearUs(std::size_t batch);
    double decodeAttnUs(std::size_t batch, std::size_t seq_bucket);

    const gpusim::GpuSpec &spec_;
    const llm::LlamaConfig &model_;
    llm::QuantScheme scheme_;
    PricerConfig cfg_;

    std::map<std::size_t, double> prefill_memo_;
    std::map<std::size_t, double> linear_memo_;
    std::map<std::pair<std::size_t, std::size_t>, double> attn_memo_;
    std::map<std::size_t, double> elem_memo_;
};

} // namespace vqllm::serving
