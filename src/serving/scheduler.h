/**
 * @file
 * Policy-driven continuous-batching scheduler and iteration pricer.
 *
 * The scheduler owns the waiting/running queues and forms one
 * *iteration* at a time.  Queue order and preemption-victim selection
 * are delegated to a SchedulingPolicy (FCFS, priority, SLO-aware EDF),
 * so every policy shares the same KV block accounting through
 * ShardedKvPool (per-device pools under tensor parallelism; one pool at
 * degree 1) and the same recompute-style preemption: a sequence that
 * loses its blocks re-queues and re-prefills its full context later.
 *
 * Two batch-formation regimes:
 *  - **Unchunked** (chunk_tokens == 0): vLLM-style prefill-prioritized
 *    admission — an iteration is either a prefill batch under
 *    max_prefill_tokens or one decode step for every running sequence.
 *  - **Chunked prefill** (chunk_tokens > 0): every iteration decodes
 *    all fully-prefilled sequences AND processes up to chunk_tokens
 *    prompt tokens, sliced across partially-prefilled and newly
 *    admitted requests, so long prompts no longer stall running
 *    decodes for a whole prompt's worth of GEMMs.
 *
 * KV accounting convention (shared by both regimes): every scheduled
 * forward pass that emits a token also materializes that token's KV
 * slot, so after any iteration a fully-prefilled running sequence
 * satisfies pool.seqTokens(id) == contextTokens().  A (re)prefill
 * therefore allocates contextTokens()+1 slots — its final slice emits
 * one token (the first token of a fresh prefill, the next token of a
 * recompute) — and a decode step extends by exactly one.
 *
 * IterationPricer turns a formed iteration into simulated microseconds
 * by calling the same machinery the end-to-end model uses
 * (llm::schemeLinearUs / schemeAttentionUs, which compile adaptive VQ
 * kernels through the compiler::Engine facade and price them with
 * gpusim::CostModel).  Decode attention is priced per context-length
 * bucket — mirroring flash-decoding's homogeneous sub-launches over a
 * ragged batch — and prefill slices via llm::estimateChunkedPrefillUs
 * on the (slice, context) bucket.  Kernel-level memoization lives in
 * the engine's plan cache: steady-state decode iterations repeat a
 * handful of bucketed shapes, so pricing them is cache hits, which
 * keeps a multi-minute simulation to a few hundred planner
 * invocations.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "gpusim/gpu_spec.h"
#include "llm/model_config.h"
#include "llm/tensor_parallel.h"
#include "serving/policy.h"
#include "serving/request.h"
#include "serving/sharded_kv_pool.h"

namespace vqllm::compiler {
class Engine;
}

namespace vqllm::obs {
class TraceRecorder;
}

namespace vqllm::serving {

class PrefixCache;

/** Batch-formation limits. */
struct SchedulerConfig
{
    /** Maximum concurrently running (decoding or prefilling) sequences. */
    std::size_t max_batch = 64;
    /** Prompt-token budget of one unchunked prefill iteration.  A
     *  single prompt longer than the budget is still admitted alone. */
    std::size_t max_prefill_tokens = 4096;
    /** Chunked prefill: prompt-token budget mixed into *every*
     *  iteration alongside decode steps.  0 disables chunking and
     *  selects the unchunked either/or regime above. */
    std::size_t chunk_tokens = 0;
    /** Admission / eviction ordering. */
    PolicyKind policy = PolicyKind::FCFS;
};

/**
 * Forms per-iteration batches over the request queues.
 *
 * The waiting queue is kept in policy admission order (for FCFS that
 * is arrival order, so preempted sequences re-admit ahead of younger
 * requests); preemption victims are the policy's evictBefore minimum
 * among requests that have not decoded in the current iteration.
 */
class Scheduler
{
  public:
    Scheduler(const SchedulerConfig &cfg, ShardedKvPool &pool);

    /** One prefill slice scheduled in an iteration. */
    struct PrefillChunk
    {
        Request *req = nullptr;
        /** Prompt/context tokens processed by this slice. */
        std::size_t tokens = 0;
        /** KV tokens already resident before the slice (the history
         *  its attention spans). */
        std::size_t context = 0;
        /** True when the slice completes the (re)prefill; the request
         *  emits a token and becomes decode-eligible. */
        bool last = false;
    };

    /** One scheduled iteration.  Unchunked iterations hold prefill
     *  chunks or decode steps, never both; chunked iterations mix. */
    struct Iteration
    {
        /** Prefill slices processed this iteration. */
        std::vector<PrefillChunk> prefill;
        /** Requests decoding one token this iteration. */
        std::vector<Request *> decode;
        /** Preemptions triggered while forming the iteration. */
        std::size_t preempted = 0;

        bool
        empty() const
        {
            return prefill.empty() && decode.empty();
        }
    };

    /**
     * Enqueue an arrived request.  Requests whose full context
     * (prompt + max_new_tokens) can never fit in the pool are rejected
     * immediately (state -> Rejected) — admitting them would livelock
     * the preemption loop.
     */
    void submit(Request *r);

    /** Form the next iteration (empty when no work is schedulable). */
    Iteration next();

    /** Retire a finished request: release its KV blocks. */
    void retire(Request *r);

    /** @return true when no request is waiting or running. */
    bool
    idle() const
    {
        return waiting_.empty() && running_.empty();
    }

    std::size_t waitingCount() const { return waiting_.size(); }
    std::size_t runningCount() const { return running_.size(); }
    std::uint64_t rejectedCount() const { return rejected_; }
    const std::vector<Request *> &running() const { return running_; }
    const std::vector<Request *> &waiting() const { return waiting_; }
    const SchedulingPolicy &policy() const { return *policy_; }

    /** Attach a trace recorder (nullptr = off, the default):
     *  preemptions and rejections record as instants at the
     *  recorder's simulated clock. */
    void setTrace(obs::TraceRecorder *trace) { trace_ = trace; }

    /** Attach a prefix cache (nullptr = off, the default): admission
     *  matches each prompt against cached prefixes, maps hits in as
     *  shared blocks, and prefills only the unmatched suffix
     *  (PrefillChunk::context starts at the matched tokens, so the
     *  pricer charges the suffix alone); completed slices feed the
     *  index via onPrefillAdvance. */
    void setPrefixCache(PrefixCache *cache) { prefix_cache_ = cache; }

  private:
    void admitImported();
    Iteration nextUnchunked();
    Iteration nextChunked();
    void decodeStep(Iteration &it);
    void prefillChunks(Iteration &it);
    std::size_t victimIndex(const Iteration &it) const;
    void preempt(Request *r);
    void requeue(Request *r);

    SchedulerConfig cfg_;
    ShardedKvPool &pool_;
    std::unique_ptr<SchedulingPolicy> policy_;
    /** Waiting queue, kept in policy admission order (requeue()). */
    std::vector<Request *> waiting_;
    /** Running set (admission order; batch formation orders its own
     *  views with total policy comparators, so this order is not
     *  load-bearing). */
    std::vector<Request *> running_;
    std::uint64_t rejected_ = 0;
    obs::TraceRecorder *trace_ = nullptr;
    PrefixCache *prefix_cache_ = nullptr;
};

/** Tunables of the iteration pricer. */
struct PricerConfig
{
    /** Context-length bucket for attention memoization, tokens. */
    std::size_t seq_bucket = 256;
    /** Host->device bandwidth for codebook-group uploads, GB/s. */
    double upload_gbps = 32.0;
    /** Fixed per-upload latency (launch + synchronization), us. */
    double upload_fixed_us = 10.0;
};

/**
 * Prices scheduler iterations in simulated microseconds, across the
 * shards of a tensor-parallel deployment.
 *
 * Kernel compilation and costing route through the per-shard
 * compiler::Engine instances, whose memoizing plan caches make
 * repeated (bucketed) shapes cache hits — after the first decode
 * iteration a steady-state simulation prices almost entirely from the
 * cache.  Under TP (degree > 1) every decode step and prefill chunk
 * prices the critical shard's head-sharded attention and column/row
 * -parallel linears per shard (shard geometry from
 * llm::shardLinearShapes / shardAttnShape, the same helpers
 * llm::estimateTensorParallel uses, so the two models stay consistent)
 * plus the two per-layer ring all-reduces via llm::layerAllReduceUs.
 * Degree 1 takes the exact pre-TP arithmetic: no collectives, unsharded
 * shapes, bit-identical pricing.
 *
 * Engines may be shared across pricers and shards (they are
 * thread-safe); the pricer's own residual memo tables (prefill
 * buckets, element-wise ops) and per-shard cache-delta accounting are
 * not, so create one pricer per simulator.
 */
class IterationPricer
{
  public:
    /** Plan-cache lookups one shard's pricing performed (the
     *  attribution works whether shards share one engine or own
     *  private ones — pricing is sequential within the pricer). */
    struct ShardCacheDelta
    {
        std::uint64_t plan_cache_hits = 0;
        std::uint64_t plan_cache_misses = 0;
    };

    /**
     * Busy-time decomposition of priced work, microseconds.  The four
     * categories partition every priced microsecond: summed over a run
     * they reproduce the simulator's busy time exactly (modulo
     * floating-point association).
     */
    struct Breakdown
    {
        /** Prefill-slice compute (chunked GEMMs + history attention). */
        double prefill_us = 0;
        /** Decode compute (linears + bucketed attention + element-wise
         *  ops; the critical shard under TP). */
        double decode_us = 0;
        /** Ring all-reduces of prefill slices and decode steps (0 at
         *  degree 1). */
        double comm_us = 0;
        /** Codebook-group upload penalties for residency misses. */
        double codebook_upload_us = 0;

        double
        total() const
        {
            return prefill_us + decode_us + comm_us + codebook_upload_us;
        }
    };

    /** Per-iteration trace detail, collected only when enabled (the
     *  simulator turns it on for traced runs; off by default so the
     *  hot path stays allocation-free). */
    struct IterationDetail
    {
        /** One priced prefill slice. */
        struct ChunkSpan
        {
            std::uint64_t req_id = 0;
            std::size_t tokens = 0;
            std::size_t context = 0;
            bool last = false;
            /** Compute microseconds of this slice (comm excluded). */
            double us = 0;
        };

        std::vector<ChunkSpan> chunks;
        /** Per-shard decode compute (all layers), one entry per TP
         *  shard; empty when the iteration had no decode batch. */
        std::vector<double> shard_compute_us;
        /** Decode-step collective time (0 at degree 1). */
        double decode_comm_us = 0;
        /** Decode batch size of the iteration. */
        std::size_t decode_batch = 0;
    };

    /** Single-GPU convenience: degree-1 TP over one engine.  The KV
     *  storage scheme follows the weight scheme
     *  (llm::defaultKvScheme). */
    IterationPricer(compiler::Engine &eng,
                    const llm::LlamaConfig &model,
                    llm::QuantScheme scheme,
                    const PricerConfig &cfg = PricerConfig{});

    /**
     * Tensor-parallel pricer: one engine per shard (entries may repeat
     * one shared engine).  engines.size() must equal tp.degree, and
     * model.heads must divide evenly across the degree.  The KV
     * storage scheme follows the weight scheme.
     */
    IterationPricer(std::vector<compiler::Engine *> engines,
                    const llm::LlamaConfig &model,
                    llm::QuantScheme scheme, const llm::TpConfig &tp,
                    const PricerConfig &cfg = PricerConfig{});

    /**
     * Fully decoupled pricer: weight scheme `scheme` for the decode
     * linears, KV storage scheme `kv` for decode attention (FP16 KV
     * prices flash decoding, INT4 the element-wise dequant path, VQ4 /
     * VQ2 compile fused dequant-attention kernels carrying the KV
     * VQConfig) and for the codebook-residency model.
     */
    IterationPricer(std::vector<compiler::Engine *> engines,
                    const llm::LlamaConfig &model,
                    llm::QuantScheme scheme, llm::KvScheme kv,
                    const llm::TpConfig &tp,
                    const PricerConfig &cfg = PricerConfig{});

    /** Full mixed iteration: chunked-prefill GEMM slices plus decode
     *  attention buckets plus (degree > 1) the per-layer collectives,
     *  priced as one serialized launch set. */
    double iterationUs(const Scheduler::Iteration &it);

    /** One prefill slice of `tokens` against `context` resident KV
     *  tokens (chunked-prefill GEMM + attention over the history; a
     *  whole-prompt prefill is the context == 0 case).  Compute only —
     *  iterationUs adds the slice's collectives. */
    double prefillChunkUs(std::size_t tokens, std::size_t context);

    /** One decode iteration over the batch's current contexts,
     *  including the decode step's collectives. */
    double decodeUs(const std::vector<Request *> &batch);

    /** Collective time of one prefill slice of `tokens` rows (two ring
     *  all-reduces per layer; 0 at degree 1). */
    double prefillCommUs(std::size_t tokens) const;

    /** Upload penalty for codebook-residency misses (0 for schemes
     *  without codebooks).  Under TP each device uploads only its head
     *  shard and the uploads overlap, so the penalty is the critical
     *  shard's share.  The returned penalty accrues to the codebook
     *  category of the breakdown accounting. */
    double codebookMissUs(std::size_t misses);

    /** Bytes of one codebook group (all layers' KV codebooks, summed
     *  over shards). */
    std::uint64_t codebookGroupBytes() const;

    llm::QuantScheme scheme() const { return scheme_; }

    /** KV storage scheme decode attention is priced under. */
    llm::KvScheme kvScheme() const { return kv_scheme_; }

    /**
     * Cumulative signed decode-attention delta attributable to the KV
     * scheme so far: the priced attention cost minus what the same
     * bucketed shapes would cost with FP16 KV, summed over iterations
     * (critical shard, all layers).  Positive when codebook/dequant
     * work dominates, negative when reading fewer KV bytes outweighs
     * it (the common case — compressing the cache speeds attention
     * up).  Attribution only — the Breakdown categories already
     * contain this time inside decode_us.  Exactly 0 under FP16 KV.
     */
    double kvDequantUs() const { return kv_dequant_us_; }

    const llm::TpConfig &tp() const { return tp_; }

    /** Cumulative collective time priced so far, microseconds. */
    double commUs() const { return comm_us_; }

    /** Cumulative busy-time breakdown priced so far (comm_us matches
     *  commUs()). */
    Breakdown
    totals() const
    {
        Breakdown b = totals_;
        b.comm_us = comm_us_;
        return b;
    }

    /** Breakdown of the most recent iterationUs() call (codebook
     *  penalties priced after it via codebookMissUs included). */
    const Breakdown &lastBreakdown() const { return last_breakdown_; }

    /** Trace detail of the most recent iterationUs() call; populated
     *  only while detail collection is on. */
    const IterationDetail &lastDetail() const { return last_detail_; }

    /** Toggle per-iteration detail collection (off by default). */
    void setCollectDetail(bool on) { collect_detail_ = on; }

    /** Per-shard plan-cache lookup deltas accumulated so far. */
    const std::vector<ShardCacheDelta> &
    shardCacheDeltas() const
    {
        return shard_deltas_;
    }

    /** @return the engine shard 0 compiles through. */
    compiler::Engine &engine() const { return *engines_.front(); }

  private:
    double decodeLinearUs(compiler::Engine &eng, std::size_t shard,
                          std::size_t batch);
    double decodeAttnUs(compiler::Engine &eng, std::size_t shard,
                        std::size_t batch, std::size_t seq_bucket);

    std::vector<compiler::Engine *> engines_;
    const gpusim::GpuSpec &spec_;
    const llm::LlamaConfig &model_;
    llm::QuantScheme scheme_;
    llm::KvScheme kv_scheme_;
    llm::TpConfig tp_;
    PricerConfig cfg_;
    double comm_us_ = 0;
    double kv_dequant_us_ = 0;
    /** Cumulative breakdown (comm tracked by comm_us_ above). */
    Breakdown totals_;
    Breakdown last_breakdown_;
    IterationDetail last_detail_;
    bool collect_detail_ = false;
    std::vector<ShardCacheDelta> shard_deltas_;

    /** Chunked-prefill slices price FP16 GeMMs (no VQ planning), so
     *  the plan cache cannot memoize them; bucket-level memo stays. */
    std::map<std::pair<std::size_t, std::size_t>, double> prefill_memo_;
    std::map<std::size_t, double> elem_memo_;
};

} // namespace vqllm::serving
