/**
 * @file
 * Scheduling policies for the continuous-batching scheduler.
 *
 * A SchedulingPolicy supplies the two orderings batch formation needs:
 * *admission* (which waiting request enters the running set first) and
 * *eviction* (which running request loses its KV blocks first when a
 * decode step cannot take a block).  The scheduler owns the queues and
 * the KV accounting; policies only compare requests, so every policy
 * inherits the same preemption/recompute machinery.
 *
 * Three policies ship:
 *  - FCFS      — strict arrival order; evict the latest arrival
 *                (vLLM's default recompute preemption).
 *  - Priority  — higher Request::priority first; evict the lowest
 *                priority (then the latest arrival).
 *  - EDF       — SLO-aware earliest-deadline-first on the per-request
 *                TTFT deadline (before the first token) or TBT deadline
 *                (after it); evict the request with the most slack.
 *
 * Every comparator is a strict weak order with a request-id tiebreak,
 * so batch formation is deterministic for any policy.
 */
#pragma once

#include <memory>
#include <string>

#include "serving/request.h"

namespace vqllm::serving {

/** Selectable scheduling policies. */
enum class PolicyKind {
    FCFS,
    Priority,
    EDF,
};

/** Admission and eviction orderings over requests. */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    /** Policy name for reports ("fcfs", "priority", "edf"). */
    virtual const char *name() const = 0;

    /** @return true when a should be admitted before b. */
    virtual bool admitBefore(const Request &a, const Request &b) const = 0;

    /** @return true when a is the better preemption victim than b. */
    virtual bool evictBefore(const Request &a, const Request &b) const = 0;
};

/** @return the next deadline EDF schedules r against: TTFT deadline
 *  until the first token, then the TBT deadline of the next token. */
double edfDeadlineUs(const Request &r);

/** Construct a policy instance. */
std::unique_ptr<SchedulingPolicy> makePolicy(PolicyKind kind);

/** @return lower-case policy name ("fcfs", "priority", "edf"). */
const char *policyKindName(PolicyKind kind);

/** Parse a policy name; @return false on unknown token. */
bool parsePolicyKind(const std::string &token, PolicyKind *out);

} // namespace vqllm::serving
