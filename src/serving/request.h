/**
 * @file
 * Request model and synthetic serving workloads.
 *
 * A serving simulation consumes a finite trace of requests: Poisson
 * arrivals over a wall-clock window with log-normally distributed prompt
 * and generation lengths, the shape reported for production LLM traffic.
 * Each request also names a *codebook group* — the set of VQ codebooks
 * its KV cache was quantized with (per-tenant / per-adapter codebooks,
 * cf. src/cache/online_update).  Group popularity is Zipf-distributed so
 * a small residency cache of hot groups captures most of the batch.
 *
 * All sampling is driven by common/rng.h: one seed reproduces one trace.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"

namespace vqllm::serving {

/** Default SLO deadlines shared by Request and WorkloadConfig, so
 *  hand-constructed requests and generated traces agree. */
inline constexpr double kDefaultTtftDeadlineUs = 1.5e6;
inline constexpr double kDefaultTbtDeadlineUs = 200e3;

/** Lifecycle of a request inside the simulator. */
enum class RequestState {
    Waiting,   ///< arrived, not yet scheduled
    Running,   ///< prefilled; decoding one token per iteration
    Preempted, ///< KV blocks reclaimed; awaiting re-prefill (recompute)
    Finished,  ///< reached max_new_tokens
    Rejected,  ///< context can never fit in the KV pool
};

/** One inference request plus its simulation bookkeeping. */
struct Request
{
    std::uint64_t id = 0;
    /** Arrival timestamp, microseconds since trace start. */
    double arrival_us = 0;
    std::size_t prompt_len = 0;
    std::size_t max_new_tokens = 0;
    /** Codebook group the request's KV codebooks belong to. */
    std::uint64_t codebook_group = 0;
    /** Scheduling priority (higher = more urgent; PriorityPolicy). */
    int priority = 0;
    /** Shared-prefix group: requests with the same group open with the
     *  same prefix_tokens-long prompt prefix (a tenant's system
     *  prompt).  -1 = no shared prefix (prefix cache skips it). */
    std::int64_t prefix_group = -1;
    /** Leading prompt tokens shared by the prefix group (counted
     *  inside prompt_len). */
    std::size_t prefix_tokens = 0;
    /** SLO deadline for the first token, us after arrival (EDF). */
    double ttft_deadline_us = kDefaultTtftDeadlineUs;
    /** SLO deadline between consecutive tokens, us (EDF). */
    double tbt_deadline_us = kDefaultTbtDeadlineUs;

    // ---- mutable simulation state ----
    RequestState state = RequestState::Waiting;
    /** Decode tokens produced so far. */
    std::size_t generated = 0;
    /** KV tokens materialized for the current residency (mirrors
     *  KvBlockPool::seqTokens; 0 while not resident).  During chunked
     *  prefill this advances one chunk at a time. */
    std::size_t prefilled_tokens = 0;
    /** True once the current (re)prefill ran to completion and the
     *  request is decode-eligible.  Cleared on preemption. */
    bool prefill_complete = false;
    /** Timestamp of the first output token (-1 until prefilled). */
    double first_token_us = -1;
    /** Timestamp of the most recent output token. */
    double last_token_us = -1;
    /** Completion timestamp (-1 until finished). */
    double finish_us = -1;
    /** Times this request lost its KV blocks to capacity pressure. */
    std::size_t preemptions = 0;
    /**
     * The sequence's KV cache arrives from another replica (a fleet
     * prefill→decode handoff) instead of being prefilled locally: the
     * scheduler maps the full context in without prefill compute and
     * the request enters decode directly.  Cleared on admission, so a
     * later preemption recomputes locally like any other sequence.
     */
    bool kv_imported = false;

    /** @return tokens of KV context currently implied by the request. */
    std::size_t
    contextTokens() const
    {
        return prompt_len + generated;
    }

    /** @return true once all requested tokens were generated. */
    bool
    done() const
    {
        return generated >= max_new_tokens;
    }
};

/**
 * Shape of the arrival process.  Every pattern preserves the mean rate
 * (WorkloadConfig::qps) over full periods; the non-Poisson patterns
 * modulate the instantaneous rate so routers and schedulers face load
 * imbalance, not just steady traffic.
 */
enum class ArrivalPattern {
    /** Homogeneous Poisson process at qps. */
    Poisson,
    /** Square wave: bursts at qps*burst_peak for burst_duty of every
     *  burst_period_s, troughs compensating to preserve the mean. */
    Bursty,
    /** Sinusoidal rate qps*(1 + diurnal_amplitude*sin(2*pi*t/period)) —
     *  a compressed day/night cycle. */
    Diurnal,
};

const char *arrivalPatternName(ArrivalPattern p);
std::optional<ArrivalPattern> parseArrivalPattern(const std::string &s);

/** Parameters of the synthetic workload generator. */
struct WorkloadConfig
{
    /** Mean arrival rate, requests per second (Poisson process). */
    double qps = 4.0;
    /** Arrival window, seconds (requests arrive in [0, duration_s)). */
    double duration_s = 60.0;

    /**
     * Arrival process shape.  Poisson (the default) draws exactly the
     * pre-pattern RNG sequence, so existing traces are bit-identical;
     * the modulated patterns sample candidate arrivals at the pattern's
     * peak rate and thin them against the instantaneous rate.
     */
    ArrivalPattern arrival = ArrivalPattern::Poisson;
    /** Bursty: burst cycle length, seconds. */
    double burst_period_s = 10.0;
    /** Bursty: fraction of each cycle spent in the burst, in (0, 1). */
    double burst_duty = 0.25;
    /** Bursty: burst rate multiplier (>= 1; burst_duty*burst_peak <= 1
     *  so the trough rate stays non-negative). */
    double burst_peak = 3.0;
    /** Diurnal: cycle length, seconds. */
    double diurnal_period_s = 60.0;
    /** Diurnal: rate swing fraction, in [0, 1). */
    double diurnal_amplitude = 0.8;

    /** Median prompt length, tokens (log-normal body). */
    std::size_t prompt_len_median = 512;
    /** Log-normal sigma of the prompt-length distribution. */
    double prompt_len_sigma = 0.6;
    std::size_t prompt_len_min = 16;
    std::size_t prompt_len_max = 4096;

    /** Median generation length, tokens. */
    std::size_t gen_tokens_median = 128;
    double gen_tokens_sigma = 0.6;
    std::size_t gen_tokens_min = 8;
    std::size_t gen_tokens_max = 1024;

    /** Distinct codebook groups (tenants) in the trace. */
    std::size_t num_codebook_groups = 64;
    /** Zipf skew of group popularity (0 = uniform). */
    double group_zipf_alpha = 1.0;

    /** Distinct priority levels, sampled uniformly per request (1 =
     *  every request at priority 0; draws no RNG so existing traces
     *  are unchanged). */
    std::size_t priority_levels = 1;

    /** Shared-prefix tenants: each request joins one of N groups and
     *  its prompt gains a prefix_tokens-long shared system prompt in
     *  front of the sampled tail (0 = no shared prefixes; draws no RNG
     *  so existing traces are unchanged). */
    std::size_t prefix_groups = 0;
    /** Shared system-prompt length per group, tokens. */
    std::size_t prefix_tokens = 1024;
    /** TTFT SLO deadline stamped on every request, us (EDF policy). */
    double ttft_deadline_us = kDefaultTtftDeadlineUs;
    /** TBT SLO deadline stamped on every request, us (EDF policy). */
    double tbt_deadline_us = kDefaultTbtDeadlineUs;

    /** Trace seed; one seed fully determines one trace. */
    std::uint64_t seed = 42;

    /**
     * Workload replay: path to a JSONL trace file.  Non-empty replaces
     * the synthetic generator entirely — one JSON object per line with
     * required fields `arrival_us`, `prompt_len`, `output_len` and an
     * optional `group` (codebook group, default 0).  Blank lines are
     * skipped; any malformed line is a hard error (vqllm_fatal).
     * Requests are sorted by arrival and re-identified 0..n-1, and the
     * deadline fields above are stamped as usual.
     */
    std::string trace_path;
};

/**
 * Generate a request trace: Poisson arrivals, log-normal lengths,
 * Zipf-popular codebook groups.  Deterministic in cfg.seed; requests are
 * returned sorted by arrival time with ids 0..n-1.  With
 * cfg.trace_path set, replays the JSONL file instead of sampling.
 */
std::vector<Request> generateWorkload(const WorkloadConfig &cfg);

/**
 * Load a JSONL request trace (see WorkloadConfig::trace_path for the
 * schema).  Deadlines are stamped from cfg; malformed lines and
 * unreadable files are hard errors.
 */
std::vector<Request> loadWorkloadTrace(const WorkloadConfig &cfg);

} // namespace vqllm::serving
