#include "serving/policy.h"

#include "common/logging.h"

namespace vqllm::serving {

namespace {

/** Arrival order with an id tiebreak (total order over a trace). */
bool
arrivesBefore(const Request &a, const Request &b)
{
    if (a.arrival_us != b.arrival_us)
        return a.arrival_us < b.arrival_us;
    return a.id < b.id;
}

class FcfsPolicy final : public SchedulingPolicy
{
  public:
    const char *
    name() const override
    {
        return "fcfs";
    }

    bool
    admitBefore(const Request &a, const Request &b) const override
    {
        return arrivesBefore(a, b);
    }

    bool
    evictBefore(const Request &a, const Request &b) const override
    {
        // Latest arrival loses its blocks first.
        return arrivesBefore(b, a);
    }
};

class PriorityPolicy final : public SchedulingPolicy
{
  public:
    const char *
    name() const override
    {
        return "priority";
    }

    bool
    admitBefore(const Request &a, const Request &b) const override
    {
        if (a.priority != b.priority)
            return a.priority > b.priority;
        return arrivesBefore(a, b);
    }

    bool
    evictBefore(const Request &a, const Request &b) const override
    {
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return arrivesBefore(b, a);
    }
};

class EdfPolicy final : public SchedulingPolicy
{
  public:
    const char *
    name() const override
    {
        return "edf";
    }

    bool
    admitBefore(const Request &a, const Request &b) const override
    {
        double da = edfDeadlineUs(a), db = edfDeadlineUs(b);
        if (da != db)
            return da < db;
        return arrivesBefore(a, b);
    }

    bool
    evictBefore(const Request &a, const Request &b) const override
    {
        // The request with the most slack absorbs the stall best.
        double da = edfDeadlineUs(a), db = edfDeadlineUs(b);
        if (da != db)
            return da > db;
        return arrivesBefore(b, a);
    }
};

} // namespace

double
edfDeadlineUs(const Request &r)
{
    if (r.generated == 0)
        return r.arrival_us + r.ttft_deadline_us;
    return r.last_token_us + r.tbt_deadline_us;
}

std::unique_ptr<SchedulingPolicy>
makePolicy(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::FCFS:
        return std::make_unique<FcfsPolicy>();
      case PolicyKind::Priority:
        return std::make_unique<PriorityPolicy>();
      case PolicyKind::EDF:
        return std::make_unique<EdfPolicy>();
    }
    vqllm_panic("unknown PolicyKind");
}

const char *
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::FCFS:
        return "fcfs";
      case PolicyKind::Priority:
        return "priority";
      case PolicyKind::EDF:
        return "edf";
    }
    return "?";
}

bool
parsePolicyKind(const std::string &token, PolicyKind *out)
{
    if (token == "fcfs")
        *out = PolicyKind::FCFS;
    else if (token == "priority")
        *out = PolicyKind::Priority;
    else if (token == "edf")
        *out = PolicyKind::EDF;
    else
        return false;
    return true;
}

} // namespace vqllm::serving
