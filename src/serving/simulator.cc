#include "serving/simulator.h"

#include <algorithm>
#include <optional>

#include "common/logging.h"
#include "common/parallel.h"
#include "compiler/engine.h"
#include "gpusim/gpu_spec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/prefix_cache.h"

namespace vqllm::serving {

ServingSimulator::ServingSimulator(const SimulatorConfig &cfg)
    : cfg_(cfg),
      spec_(cfg.spec != nullptr ? *cfg.spec : gpusim::rtx4090()),
      model_(cfg.model != nullptr ? *cfg.model : llm::llama7b())
{
    vqllm_assert(cfg_.tp.degree >= 1, "TP degree must be >= 1");
    vqllm_assert(model_.heads % cfg_.tp.degree == 0,
                 "heads must divide evenly across TP ranks");
    const auto degree = static_cast<std::size_t>(cfg_.tp.degree);
    vqllm_assert(model_.kvHeads() >= degree,
                 "TP degree exceeds the model's KV heads");
    // Each device holds 1/degree of the weights; its pool gets what
    // that shard leaves free of the per-GPU HBM.
    double weight_bytes =
        static_cast<double>(model_.decoderParams()) *
        llm::schemeWeightBytesPerParam(cfg_.scheme) /
        static_cast<double>(degree);
    double free_bytes = cfg_.hbm_gb * 1e9 - weight_bytes -
                        cfg_.hbm_reserve_gb * 1e9;
    if (free_bytes <= 0)
        vqllm_fatal("model weight shard (", weight_bytes / 1e9,
                    " GB) exceeds HBM budget of ", cfg_.hbm_gb,
                    " GB per device at TP degree ", cfg_.tp.degree);
    kv_capacity_per_device_ = static_cast<std::uint64_t>(free_bytes);
    kv_capacity_bytes_ = kv_capacity_per_device_ * degree;
}

ServingReport
ServingSimulator::run()
{
    auto trace = generateWorkload(cfg_.workload);
    return run(trace);
}

std::vector<ServingReport>
ServingSimulator::runMany(const std::vector<SimulatorConfig> &configs)
{
    std::vector<ServingReport> reports(configs.size());
    par::parallelFor(configs.size(), 1, [&](const par::ChunkRange &c) {
        for (std::size_t i = c.begin; i < c.end; ++i)
            reports[i] = ServingSimulator(configs[i]).run();
    });
    return reports;
}

ServingReport
ServingSimulator::run(std::vector<Request> &trace)
{
    // One KV pool per TP shard: each device stores its KV-head share
    // of every cached token, so per-device bytes per token are the
    // shard's proportional slice of the scheme's full-token footprint.
    const auto degree = static_cast<std::size_t>(cfg_.tp.degree);
    // KV storage scheme: explicit when configured, otherwise implied
    // by the weight scheme (the pre-KvScheme behaviour, bit-identical).
    const llm::KvScheme kv_scheme =
        cfg_.kv_scheme.value_or(llm::defaultKvScheme(cfg_.scheme));
    const std::uint64_t total_bpt = std::max<std::uint64_t>(
        llm::kvSchemeBytesPerToken(model_, kv_scheme), 1);
    const std::uint64_t kv_heads = model_.kvHeads();
    std::vector<KvBlockPoolConfig> shard_cfgs(degree);
    for (std::size_t i = 0; i < degree; ++i) {
        std::uint64_t shard_heads = llm::shardSplit(kv_heads, degree, i);
        shard_cfgs[i].capacity_bytes = kv_capacity_per_device_;
        shard_cfgs[i].block_tokens = cfg_.kv_block_tokens;
        shard_cfgs[i].bytes_per_token = std::max<std::uint64_t>(
            (total_bpt * shard_heads + kv_heads - 1) / kv_heads, 1);
    }
    ShardedKvPool pool(shard_cfgs);
    Scheduler scheduler(cfg_.scheduler, pool);
    // Declared after the pool: the cache's destructor drops its block
    // references and unregisters the reclaimer before the pool dies.
    std::optional<PrefixCache> prefix_cache;
    if (cfg_.prefix_cache) {
        PrefixCacheConfig pc_cfg;
        pc_cfg.block_tokens = cfg_.kv_block_tokens;
        pc_cfg.capacity_blocks = cfg_.prefix_capacity_blocks;
        prefix_cache.emplace(pool, pc_cfg);
        scheduler.setPrefixCache(&*prefix_cache);
    }
    // Private per-run engine unless one is injected: reports then
    // describe exactly this run, and concurrent runMany sims never
    // contend on one cache.  TP shards are identical GPUs compiling
    // identical shard shapes, so all shards price through one engine —
    // per-shard plan-cache deltas still attribute correctly because
    // the pricer snapshots around each shard's pricing.
    std::optional<compiler::Engine> local_engine;
    compiler::Engine &eng =
        cfg_.engine != nullptr ? *cfg_.engine
                               : local_engine.emplace(spec_);
    const compiler::CacheStats plan_stats_before = eng.stats();
    std::vector<compiler::Engine *> shard_engines(degree, &eng);
    IterationPricer pricer(shard_engines, model_, cfg_.scheme, kv_scheme,
                           cfg_.tp, cfg_.pricer);
    CodebookResidency residency(cfg_.codebook_slots);
    const bool has_codebooks = pricer.codebookGroupBytes() > 0;
    MetricsCollector metrics(cfg_.metrics);

    // ---- Observability hookup.  Every instrumentation site guards on
    // its own nullptr, so a run without a recorder/registry executes
    // exactly the pre-instrumentation code path (bit-identical report).
    obs::TraceRecorder *trace_rec = cfg_.trace;
    if (trace_rec != nullptr) {
        trace_rec->setNow(0);
        trace_rec->nameTrack(0, "scheduler");
        for (std::size_t s = 0; s < degree; ++s)
            trace_rec->nameTrack(1 + static_cast<int>(s),
                                 "shard " + std::to_string(s));
        scheduler.setTrace(trace_rec);
        pool.setTrace(trace_rec);
        eng.setTrace(trace_rec);
        if (prefix_cache)
            prefix_cache->setTrace(trace_rec);
        pricer.setCollectDetail(true);
    }
    obs::Histogram *h_iter_us = nullptr;
    obs::Histogram *h_decode_batch = nullptr;
    if (cfg_.metrics != nullptr) {
        h_iter_us =
            &cfg_.metrics->histogram("serving.iteration.duration_us");
        h_decode_batch =
            &cfg_.metrics->histogram("serving.iteration.decode_batch");
    }

    double now_us = 0;
    double busy_us = 0;
    std::size_t next_arrival = 0;
    std::uint64_t completed = 0;
    std::uint64_t iterations = 0;
    std::uint64_t peak_running = 0;
    std::vector<std::uint64_t> groups;

    auto deliver = [&](double now) {
        while (next_arrival < trace.size() &&
               trace[next_arrival].arrival_us <= now)
            scheduler.submit(&trace[next_arrival++]);
    };

    while (completed + scheduler.rejectedCount() < trace.size()) {
        if (trace_rec != nullptr)
            trace_rec->setNow(now_us);
        deliver(now_us);
        if (scheduler.idle()) {
            if (next_arrival >= trace.size())
                break; // every remaining request was rejected
            // Fast-forward the idle gap to the next arrival.
            now_us = trace[next_arrival].arrival_us;
            continue;
        }

        auto iter = scheduler.next();
        if (iter.empty()) {
            // Waiting head cannot be admitted until running sequences
            // finish; with nothing running this cannot happen (submit
            // rejects requests that can never fit).
            vqllm_assert(scheduler.runningCount() > 0,
                         "scheduler stalled with empty running set");
            // No decode and no admission: unreachable by construction
            // (decode always schedules running sequences), but guard
            // against infinite loops.
            vqllm_panic("scheduler returned an empty iteration");
        }
        ++iterations;
        peak_running = std::max<std::uint64_t>(peak_running,
                                               scheduler.runningCount());
        for (std::size_t k = 0; k < iter.preempted; ++k)
            metrics.recordPreemption();

        // ---- Price the iteration (mixed prefill slices + decode in
        // one launch set).
        double iter_us = pricer.iterationUs(iter);
        if (has_codebooks) {
            groups.clear();
            for (const auto &chunk : iter.prefill)
                groups.push_back(chunk.req->codebook_group);
            for (const Request *r : iter.decode)
                groups.push_back(r->codebook_group);
            auto touch = residency.touchBatch(groups);
            iter_us += pricer.codebookMissUs(touch.misses);
        }

        if (trace_rec != nullptr) {
            // The iteration's four price components tile [now, now +
            // iter_us] as consecutive spans: prefill, decode, comm,
            // codebook upload.  Detail spans (per chunk, per shard)
            // nest inside their tiles; category sums therefore
            // reproduce the report's busy-time breakdown.
            const IterationPricer::Breakdown &bd =
                pricer.lastBreakdown();
            const IterationPricer::IterationDetail &det =
                pricer.lastDetail();
            trace_rec->span(
                "iteration", "iteration", 0, now_us, iter_us,
                {{"prefill_chunks",
                  static_cast<double>(iter.prefill.size())},
                 {"decode_batch",
                  static_cast<double>(iter.decode.size())}});
            double t = now_us;
            if (bd.prefill_us > 0) {
                trace_rec->span(
                    "prefill", "prefill", 0, t, bd.prefill_us,
                    {{"chunks",
                      static_cast<double>(iter.prefill.size())}});
                double ct = t;
                for (const auto &c : det.chunks) {
                    trace_rec->span(
                        "prefill_chunk", "prefill_detail", 0, ct, c.us,
                        {{"req", static_cast<double>(c.req_id)},
                         {"tokens", static_cast<double>(c.tokens)},
                         {"context", static_cast<double>(c.context)},
                         {"last", c.last ? 1.0 : 0.0}});
                    ct += c.us;
                }
                t += bd.prefill_us;
            }
            if (bd.decode_us > 0) {
                trace_rec->span(
                    "decode", "decode", 0, t, bd.decode_us,
                    {{"batch",
                      static_cast<double>(det.decode_batch)}});
                for (std::size_t s = 0; s < det.shard_compute_us.size();
                     ++s)
                    trace_rec->span("decode_compute", "shard_compute",
                                    1 + static_cast<int>(s), t,
                                    det.shard_compute_us[s]);
                t += bd.decode_us;
            }
            if (bd.comm_us > 0) {
                trace_rec->span("all_reduce", "comm", 0, t, bd.comm_us);
                if (det.decode_comm_us > 0)
                    for (std::size_t s = 0; s < degree; ++s)
                        trace_rec->span("all_reduce", "shard_comm",
                                        1 + static_cast<int>(s), t,
                                        det.decode_comm_us);
                t += bd.comm_us;
            }
            if (bd.codebook_upload_us > 0)
                trace_rec->span("codebook_upload", "codebook", 0, t,
                                bd.codebook_upload_us);
        }
        if (h_iter_us != nullptr) {
            h_iter_us->record(iter_us);
            h_decode_batch->record(
                static_cast<double>(iter.decode.size()));
        }

        now_us += iter_us;
        busy_us += iter_us;

        // ---- Emit tokens and retire finished requests.
        std::vector<Request *> finished;
        for (const auto &chunk : iter.prefill) {
            metrics.recordPrefillTokens(chunk.tokens);
            if (!chunk.last)
                continue; // partial slice: no token emitted yet
            Request *r = chunk.req;
            if (r->generated == 0) {
                // The slice completing a fresh prefill emits the
                // request's first output token.
                r->first_token_us = now_us;
                metrics.recordTtft(now_us - r->arrival_us);
            } else {
                // Recompute after preemption re-runs the forward pass
                // over the full context and emits the next token; the
                // stall since the last token lands in this TBT sample.
                metrics.recordTbt(now_us - r->last_token_us);
            }
            ++r->generated;
            r->last_token_us = now_us;
            metrics.recordDecodeTokens(1);
            if (r->done())
                finished.push_back(r);
        }
        for (Request *r : iter.decode) {
            ++r->generated;
            metrics.recordTbt(now_us - r->last_token_us);
            r->last_token_us = now_us;
            metrics.recordDecodeTokens(1);
            if (r->done())
                finished.push_back(r);
        }
        for (Request *r : finished) {
            r->finish_us = now_us;
            metrics.recordE2e(now_us - r->arrival_us);
            scheduler.retire(r);
            ++completed;
        }

        // ---- KV accounting invariant: every resident sequence's pool
        // occupancy matches its bookkeeping, and a fully-prefilled
        // sequence holds exactly its context — the prefill and
        // re-prefill paths must never drift apart by a token.
        std::size_t running_tokens = 0;
        for (const Request *r : scheduler.running()) {
            vqllm_assert(pool.seqTokens(r->id) == r->prefilled_tokens,
                         "KV pool tokens diverged from request "
                         "bookkeeping for request ", r->id);
            if (r->prefill_complete)
                vqllm_assert(r->prefilled_tokens == r->contextTokens(),
                             "prefilled sequence does not hold its "
                             "context for request ", r->id);
            running_tokens += r->prefilled_tokens;
        }
        // Pool-level conservation per shard.  Without sharing, stored
        // tokens equal the per-sequence sum exactly.  With the prefix
        // cache, shared blocks store their tokens once in the pool but
        // once per owner in the sum, so the pool view is bounded by
        // the sum plus the cache-held tokens — summing seqTokens over
        // sequences would double-count shared prefixes.
        for (std::size_t s = 0; s < degree; ++s) {
            if (!prefix_cache)
                vqllm_assert(
                    pool.storedTokens(s) == running_tokens,
                    "pool stored tokens diverged from the running "
                    "set on shard ", s);
            else
                vqllm_assert(
                    pool.storedTokens(s) <=
                        running_tokens + prefix_cache->cachedTokens(),
                    "pool stored tokens exceed running set plus "
                    "cached prefixes on shard ", s);
        }
    }

    // ---- Assemble the report.
    ServingReport report;
    report.ttft = summarize(metrics.ttftSamples());
    report.tbt = summarize(metrics.tbtSamples());
    report.e2e = summarize(metrics.e2eSamples());
    report.sim_time_us = now_us;
    report.busy_time_us = busy_us;
    report.utilization = now_us > 0 ? busy_us / now_us : 0;
    report.tokens_per_sec =
        busy_us > 0 ? static_cast<double>(metrics.decodeTokens()) /
                          (busy_us / 1e6)
                    : 0;
    report.completed_requests = completed;
    report.rejected_requests = scheduler.rejectedCount();
    report.preemptions = metrics.preemptions();
    report.decode_tokens = metrics.decodeTokens();
    report.prefill_tokens = metrics.prefillTokens();
    report.iterations = iterations;
    report.kv_peak_bytes = pool.peakBytes();
    report.kv_capacity_bytes = kv_capacity_bytes_;
    report.codebook_hit_rate =
        has_codebooks ? residency.stats().hitRate() : 1.0;
    const compiler::CacheStats plan_stats = eng.stats();
    report.plan_cache_hits = plan_stats.hits - plan_stats_before.hits;
    report.plan_cache_misses =
        plan_stats.misses - plan_stats_before.misses;
    report.plan_cache_evictions =
        plan_stats.evictions - plan_stats_before.evictions;
    report.prefix_cache_enabled = prefix_cache.has_value();
    if (prefix_cache) {
        const PrefixCacheStats &pc = prefix_cache->stats();
        report.prefix_lookups = pc.lookups;
        report.prefix_hits = pc.hits;
        report.prefix_matched_tokens = pc.matched_tokens;
        report.prefix_evicted_blocks = pc.evicted_nodes;
        report.prefix_cached_blocks = prefix_cache->cachedBlocks();
        report.cow_forks = pool.cowForks();
        // Fraction of prefill demand served from cache: matched
        // tokens over matched plus actually-prefilled tokens.
        std::uint64_t demand =
            pc.matched_tokens + report.prefill_tokens;
        report.prefix_hit_rate =
            demand > 0 ? static_cast<double>(pc.matched_tokens) /
                             static_cast<double>(demand)
                       : 0.0;
    }
    report.kv_scheme = llm::kvSchemeToken(kv_scheme);
    report.kv_bytes_per_token = total_bpt;
    report.kv_capacity_multiplier =
        static_cast<double>(model_.kvCacheBytesFp16(1, 1)) /
        static_cast<double>(total_bpt);
    report.kv_dequant_us = pricer.kvDequantUs();
    report.peak_running_seqs = peak_running;
    report.tp_degree = degree;
    report.comm_us = pricer.commUs();
    report.comm_fraction = busy_us > 0 ? pricer.commUs() / busy_us : 0;
    const IterationPricer::Breakdown breakdown = pricer.totals();
    report.prefill_us = breakdown.prefill_us;
    report.decode_us = breakdown.decode_us;
    report.codebook_upload_us = breakdown.codebook_upload_us;
    report.shards.resize(degree);
    const auto &shard_deltas = pricer.shardCacheDeltas();
    for (std::size_t i = 0; i < degree; ++i) {
        report.shards[i].kv_peak_bytes = pool.shard(i).peakBytes();
        report.shards[i].kv_capacity_bytes = kv_capacity_per_device_;
        report.shards[i].plan_cache_hits =
            shard_deltas[i].plan_cache_hits;
        report.shards[i].plan_cache_misses =
            shard_deltas[i].plan_cache_misses;
    }

    if (trace_rec != nullptr) {
        trace_rec->setNow(now_us);
        // Detach the recorder: injected engines outlive this run and
        // may compile concurrently afterwards.
        eng.setTrace(nullptr);
    }
    if (cfg_.metrics != nullptr) {
        obs::MetricsRegistry &reg = *cfg_.metrics;
        pool.exportMetrics(reg, "serving.kv");
        residency.exportMetrics(reg, "serving.codebook");
        eng.exportMetrics(reg, "compiler.plan_cache");
        if (prefix_cache) {
            prefix_cache->exportMetrics(reg, "serving.kv.prefix");
            reg.gauge("serving.kv.prefix.hit_rate")
                .set(report.prefix_hit_rate);
            reg.counter("serving.kv.prefix.cow_forks")
                .add(report.cow_forks);
        }
        if (kv_scheme != llm::KvScheme::FP16) {
            // Gated like the report's kv_scheme section: FP16-KV
            // metric exports stay identical to pre-KvScheme builds.
            reg.gauge("serving.kv.scheme.bytes_per_token")
                .set(static_cast<double>(total_bpt));
            reg.gauge("serving.kv.scheme.capacity_multiplier")
                .set(report.kv_capacity_multiplier);
            reg.gauge("serving.kv.scheme.dequant_us")
                .set(report.kv_dequant_us);
            reg.gauge("serving.kv.scheme.peak_running_seqs")
                .set(static_cast<double>(peak_running));
        }
        reg.counter("serving.requests.completed").add(completed);
        reg.counter("serving.requests.rejected")
            .add(report.rejected_requests);
        reg.counter("serving.iterations").add(iterations);
        reg.gauge("serving.sim_time_us").set(report.sim_time_us);
        reg.gauge("serving.busy_time_us").set(report.busy_time_us);
        reg.gauge("serving.busy.prefill_us").set(report.prefill_us);
        reg.gauge("serving.busy.decode_us").set(report.decode_us);
        reg.gauge("serving.busy.comm_us").set(report.comm_us);
        reg.gauge("serving.busy.codebook_upload_us")
            .set(report.codebook_upload_us);
        reg.gauge("serving.utilization").set(report.utilization);
        reg.gauge("serving.tokens_per_sec").set(report.tokens_per_sec);
        reg.gauge("serving.tp_degree")
            .set(static_cast<double>(degree));
    }

    // ---- Refcount leak check: with the trace drained and the cache's
    // references dropped, every block must have returned to the pools.
    if (prefix_cache)
        prefix_cache->clear();
    vqllm_assert(pool.usedBlocks() == 0,
                 "KV blocks leaked after the trace drained");
    return report;
}

} // namespace vqllm::serving
