#include "serving/simulator.h"

#include <memory>

#include "common/logging.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "serving/sim_core.h"

namespace vqllm::serving {

std::uint64_t
kvCapacityPerDeviceBytes(const SimulatorConfig &cfg,
                         const llm::LlamaConfig &model)
{
    vqllm_assert(cfg.tp.degree >= 1, "TP degree must be >= 1");
    vqllm_assert(model.heads % cfg.tp.degree == 0,
                 "heads must divide evenly across TP ranks");
    const auto degree = static_cast<std::size_t>(cfg.tp.degree);
    vqllm_assert(model.kvHeads() >= degree,
                 "TP degree exceeds the model's KV heads");
    // Each device holds 1/degree of the weights; its pool gets what
    // that shard leaves free of the per-GPU HBM.
    double weight_bytes = static_cast<double>(model.decoderParams()) *
                          llm::schemeWeightBytesPerParam(cfg.scheme) /
                          static_cast<double>(degree);
    double free_bytes =
        cfg.hbm_gb * 1e9 - weight_bytes - cfg.hbm_reserve_gb * 1e9;
    if (free_bytes <= 0)
        vqllm_fatal("model weight shard (", weight_bytes / 1e9,
                    " GB) exceeds HBM budget of ", cfg.hbm_gb,
                    " GB per device at TP degree ", cfg.tp.degree);
    return static_cast<std::uint64_t>(free_bytes);
}

ServingSimulator::ServingSimulator(const SimulatorConfig &cfg)
    : cfg_(cfg),
      spec_(cfg.spec != nullptr ? *cfg.spec : gpusim::rtx4090()),
      model_(cfg.model != nullptr ? *cfg.model : llm::llama7b())
{
    kv_capacity_per_device_ = kvCapacityPerDeviceBytes(cfg_, model_);
    kv_capacity_bytes_ = kv_capacity_per_device_ *
                         static_cast<std::size_t>(cfg_.tp.degree);
}

ServingReport
ServingSimulator::run()
{
    auto trace = generateWorkload(cfg_.workload);
    return run(trace);
}

std::vector<ServingReport>
ServingSimulator::runMany(const std::vector<SimulatorConfig> &configs)
{
    return runMany(configs, nullptr);
}

std::vector<ServingReport>
ServingSimulator::runMany(
    const std::vector<SimulatorConfig> &configs,
    std::vector<std::unique_ptr<obs::MetricsRegistry>> *registries)
{
    std::vector<SimulatorConfig> cfgs = configs;
    if (registries != nullptr) {
        // One private registry per simulation (overriding any registry
        // the caller left in the config): concurrent sims never share
        // a registry, and the caller gets per-sim metrics in config
        // order alongside the reports.
        registries->clear();
        registries->reserve(cfgs.size());
        for (auto &cfg : cfgs) {
            registries->push_back(
                std::make_unique<obs::MetricsRegistry>());
            cfg.metrics = registries->back().get();
        }
    }
    std::vector<ServingReport> reports(cfgs.size());
    par::parallelFor(cfgs.size(), 1, [&](const par::ChunkRange &c) {
        for (std::size_t i = c.begin; i < c.end; ++i)
            reports[i] = ServingSimulator(cfgs[i]).run();
    });
    return reports;
}

ServingReport
ServingSimulator::run(std::vector<Request> &trace)
{
    // Thin driver over the stepping core (serving/sim_core.h): deliver
    // arrivals, fast-forward idle gaps to the next arrival, and step
    // until every request has finished or been rejected.  The fleet
    // layer drives the same core with its own clock policy, which is
    // what keeps a 1-replica fleet bit-identical to this loop.
    SimulatorCore core(cfg_);
    std::size_t next_arrival = 0;
    while (core.completedCount() + core.rejectedCount() < trace.size()) {
        while (next_arrival < trace.size() &&
               trace[next_arrival].arrival_us <= core.now())
            core.submit(&trace[next_arrival++]);
        if (core.idle()) {
            if (next_arrival >= trace.size())
                break; // every remaining request was rejected
            core.setNow(trace[next_arrival].arrival_us);
            continue;
        }
        core.step();
    }
    return core.finalize();
}

} // namespace vqllm::serving
