/**
 * @file
 * Stepping core of the serving simulator: one replica's event loop,
 * decomposed into submit / step / finalize so an external driver (the
 * fleet layer, src/fleet/) can interleave many replicas on one global
 * timeline and route arrivals between them.
 *
 * ServingSimulator::run() is a thin driver over this class — deliver
 * arrivals, fast-forward idle gaps, step until the trace drains — so a
 * single-replica run through the core is *the same code path* as the
 * pre-core simulator: reports and traces stay bit-identical.
 *
 * Beyond the bare loop the core adds the two hooks disaggregated
 * serving needs:
 *  - submit() routes requests flagged kv_imported through the
 *    scheduler's imported-KV admission (the sequence's cache arrives
 *    over the fleet link instead of being prefilled locally), and
 *  - load introspection (queued prefill/decode tokens, processed
 *    totals) plus takeFinished() for the router and the handoff
 *    protocol.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "compiler/engine.h"
#include "serving/kv_block_pool.h"
#include "serving/metrics.h"
#include "serving/prefix_cache.h"
#include "serving/scheduler.h"
#include "serving/simulator.h"

namespace vqllm::obs {
class Histogram;
class TraceRecorder;
}

namespace vqllm::serving {

/**
 * One replica's simulation state, advanced one scheduler iteration at
 * a time.  The caller owns the clock policy: it delivers arrivals
 * (submit), fast-forwards idle gaps (setNow), steps while work is
 * pending, and finalizes exactly once when its trace has drained.
 *
 * Determinism: the core is single-threaded and every step is a pure
 * function of prior submissions — two identical call sequences produce
 * bit-identical reports (and byte-identical traces).
 */
class SimulatorCore
{
  public:
    explicit SimulatorCore(const SimulatorConfig &cfg);

    /** @return the replica-local simulated clock, microseconds. */
    double now() const { return now_us_; }

    /** Fast-forward the idle clock (never backwards). */
    void setNow(double us);

    /**
     * Deliver one arrived request to the scheduler.  The request must
     * have arrival_us <= now().  A request flagged kv_imported admits
     * through the imported-KV path (full context mapped in, no prefill
     * compute).  Requests whose peak context can never fit are
     * rejected synchronously (r->state == Rejected on return).
     */
    void submit(Request *r);

    /** @return true when no request is waiting or running. */
    bool idle() const { return scheduler_.idle(); }

    /** Run one scheduler iteration: form, price, advance the clock,
     *  emit tokens, retire finished requests.  Requires !idle(). */
    void step();

    /** Assemble the final report, export metrics, and run the KV leak
     *  check.  Call exactly once, after the last step. */
    ServingReport finalize();

    // ---- Introspection for the fleet router ----

    std::uint64_t completedCount() const { return completed_; }
    std::uint64_t rejectedCount() const { return scheduler_.rejectedCount(); }

    /** Un-prefilled prompt tokens across the waiting and running sets
     *  (imported requests carry none — their KV arrives by link). */
    std::uint64_t queuedPrefillTokens() const;

    /** Un-generated decode tokens across the waiting and running sets. */
    std::uint64_t queuedDecodeTokens() const;

    /** Prefill + decode tokens processed so far. */
    std::uint64_t processedTokens() const;

    double busyUs() const { return busy_us_; }

    /** Requests finished since the last call (drained, in finish
     *  order).  The bare simulator never drains; the fleet layer does,
     *  to trigger KV handoffs and fleet-level completion tracking. */
    std::vector<Request *> takeFinished();

    /** Latency/token sample buffers of the run so far. */
    const MetricsCollector &collector() const { return metrics_; }

    /** Resolved KV storage scheme of this replica. */
    llm::KvScheme kvScheme() const { return kv_scheme_; }

    /** Full (all-shard) KV bytes per cached token under kvScheme() —
     *  what a fleet handoff streams per token. */
    std::uint64_t kvBytesPerToken() const { return total_bpt_; }

    const llm::LlamaConfig &model() const { return model_; }

  private:
    SimulatorConfig cfg_;
    const gpusim::GpuSpec &spec_;
    const llm::LlamaConfig &model_;
    std::size_t degree_;
    llm::KvScheme kv_scheme_;
    std::uint64_t total_bpt_ = 0;
    std::uint64_t kv_capacity_per_device_ = 0;
    std::uint64_t kv_capacity_bytes_ = 0;
    ShardedKvPool pool_;
    Scheduler scheduler_;
    /** Declared after the pool: the cache's destructor drops its block
     *  references and unregisters the reclaimer before the pool dies. */
    std::optional<PrefixCache> prefix_cache_;
    /** Private per-run engine unless one is injected (see
     *  SimulatorConfig::engine). */
    std::optional<compiler::Engine> local_engine_;
    compiler::Engine *eng_ = nullptr;
    compiler::CacheStats plan_stats_before_;
    /** Persistent kernel-cache tier (set iff cfg.kernel_cache_dir). */
    std::shared_ptr<compiler::DiskCache> disk_;
    std::optional<IterationPricer> pricer_;
    CodebookResidency residency_;
    bool has_codebooks_ = false;
    MetricsCollector metrics_;
    obs::TraceRecorder *trace_rec_ = nullptr;
    obs::Histogram *h_iter_us_ = nullptr;
    obs::Histogram *h_decode_batch_ = nullptr;

    double now_us_ = 0;
    double busy_us_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t iterations_ = 0;
    std::uint64_t peak_running_ = 0;
    std::vector<std::uint64_t> groups_;
    std::vector<Request *> finished_;
    bool finalized_ = false;
};

} // namespace vqllm::serving
