#include "serving/sharded_kv_pool.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vqllm::serving {

ShardedKvPool::ShardedKvPool(const KvBlockPoolConfig &device_cfg,
                             std::size_t degree)
{
    vqllm_assert(degree >= 1, "TP degree must be >= 1");
    shards_.reserve(degree);
    for (std::size_t i = 0; i < degree; ++i)
        shards_.emplace_back(device_cfg);
}

ShardedKvPool::ShardedKvPool(const std::vector<KvBlockPoolConfig> &cfgs)
{
    vqllm_assert(!cfgs.empty(), "need at least one per-device pool");
    shards_.reserve(cfgs.size());
    for (const auto &cfg : cfgs)
        shards_.emplace_back(cfg);
}

bool
ShardedKvPool::canEverFit(std::size_t tokens) const
{
    for (const auto &shard : shards_)
        if (!shard.canEverFit(tokens))
            return false;
    return true;
}

bool
ShardedKvPool::allocSequence(std::uint64_t seq_id, std::size_t tokens)
{
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (shards_[i].allocSequence(seq_id, tokens))
            continue;
        // Shard i is the constraint: roll the prefix back so the
        // failure is all-or-nothing across devices.
        for (std::size_t j = 0; j < i; ++j)
            shards_[j].freeSequence(seq_id);
        if (i > 0)
            ++stats_.cross_shard_rollbacks;
        ++stats_.failed_allocs;
        if (trace_)
            trace_->instant("kv_alloc_fail", "kv", 0, trace_->now(),
                            {{"seq", static_cast<double>(seq_id)},
                             {"tokens", static_cast<double>(tokens)},
                             {"shard", static_cast<double>(i)}});
        return false;
    }
    if (trace_)
        trace_->instant("kv_alloc", "kv", 0, trace_->now(),
                        {{"seq", static_cast<double>(seq_id)},
                         {"tokens", static_cast<double>(tokens)}});
    return true;
}

void
ShardedKvPool::attachSequence(
    std::uint64_t seq_id,
    const std::vector<std::vector<BlockId>> &per_shard,
    std::size_t tokens)
{
    vqllm_assert(per_shard.size() == shards_.size(),
                "attach needs one block list per shard");
    for (std::size_t i = 0; i < shards_.size(); ++i)
        shards_[i].attachSequence(seq_id, per_shard[i], tokens);
}

bool
ShardedKvPool::extendSequence(std::uint64_t seq_id, std::size_t tokens)
{
    std::uint64_t forks_before =
        shards_.front().stats().cow_forks;
    std::vector<KvBlockPool::ExtendUndo> undos(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (shards_[i].extendSequence(seq_id, tokens, &undos[i]))
            continue;
        // Shard i is the constraint: revert the prefix block-exactly
        // (shared prefix blocks keep their refs and identities — a
        // free-and-realloc would silently privatize them).
        for (std::size_t j = i; j-- > 0;)
            shards_[j].undoExtend(seq_id, undos[j]);
        if (i > 0)
            ++stats_.cross_shard_rollbacks;
        ++stats_.failed_allocs;
        if (trace_)
            trace_->instant("kv_extend_fail", "kv", 0, trace_->now(),
                            {{"seq", static_cast<double>(seq_id)},
                             {"tokens", static_cast<double>(tokens)},
                             {"shard", static_cast<double>(i)}});
        return false;
    }
    if (trace_) {
        std::uint64_t forked =
            shards_.front().stats().cow_forks - forks_before;
        if (forked > 0)
            trace_->instant("cow_fork", "prefix", 0, trace_->now(),
                            {{"seq", static_cast<double>(seq_id)}});
        trace_->instant("kv_extend", "kv", 0, trace_->now(),
                        {{"seq", static_cast<double>(seq_id)},
                         {"tokens", static_cast<double>(tokens)}});
    }
    return true;
}

std::size_t
ShardedKvPool::extendableTokens(std::uint64_t seq_id) const
{
    std::size_t tokens = std::numeric_limits<std::size_t>::max();
    for (const auto &shard : shards_)
        tokens = std::min(tokens, shard.extendableTokens(seq_id));
    return tokens;
}

std::size_t
ShardedKvPool::freeTokens() const
{
    std::size_t tokens = std::numeric_limits<std::size_t>::max();
    for (const auto &shard : shards_)
        tokens = std::min(tokens, shard.freeTokens());
    return tokens;
}

std::uint64_t
ShardedKvPool::freeBlocks() const
{
    std::uint64_t blocks = std::numeric_limits<std::uint64_t>::max();
    for (const auto &shard : shards_)
        blocks = std::min(blocks, shard.freeBlocks());
    return blocks;
}

std::uint64_t
ShardedKvPool::usedBlocks() const
{
    std::uint64_t blocks = 0;
    for (const auto &shard : shards_)
        blocks += shard.usedBlocks();
    return blocks;
}

void
ShardedKvPool::freeSequence(std::uint64_t seq_id)
{
    std::size_t tokens =
        trace_ ? shards_.front().seqTokens(seq_id) : 0;
    for (auto &shard : shards_)
        shard.freeSequence(seq_id);
    if (trace_ && tokens > 0)
        trace_->instant("kv_free", "kv", 0, trace_->now(),
                        {{"seq", static_cast<double>(seq_id)},
                         {"tokens", static_cast<double>(tokens)}});
}

std::size_t
ShardedKvPool::seqTokens(std::uint64_t seq_id) const
{
    std::size_t tokens = shards_.front().seqTokens(seq_id);
    for (const auto &shard : shards_)
        vqllm_assert(shard.seqTokens(seq_id) == tokens,
                     "sequence token counts diverged across shards for "
                     "sequence ", seq_id);
    return tokens;
}

std::uint64_t
ShardedKvPool::seqBlocks(std::uint64_t seq_id) const
{
    std::uint64_t blocks = 0;
    for (const auto &shard : shards_)
        blocks += shard.seqBlocks(seq_id);
    return blocks;
}

std::uint64_t
ShardedKvPool::usedBytes() const
{
    std::uint64_t bytes = 0;
    for (const auto &shard : shards_)
        bytes += shard.usedBytes();
    return bytes;
}

std::uint64_t
ShardedKvPool::capacityBytes() const
{
    std::uint64_t bytes = 0;
    for (const auto &shard : shards_)
        bytes += shard.totalBlocks() * shard.blockBytes();
    return bytes;
}

bool
ShardedKvPool::allocCacheBlocks(std::size_t fill_tokens,
                                std::vector<BlockId> *out)
{
    out->clear();
    out->reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        BlockId b;
        if (!shards_[i].allocCacheBlock(fill_tokens, &b)) {
            for (std::size_t j = i; j-- > 0;)
                shards_[j].releaseBlockRef((*out)[j]);
            out->clear();
            if (i > 0)
                ++stats_.cross_shard_rollbacks;
            return false;
        }
        out->push_back(b);
    }
    return true;
}

void
ShardedKvPool::addBlockRefs(const std::vector<BlockId> &blocks)
{
    vqllm_assert(blocks.size() == shards_.size(),
                "need one block per shard");
    for (std::size_t i = 0; i < shards_.size(); ++i)
        shards_[i].addBlockRef(blocks[i]);
}

void
ShardedKvPool::releaseBlockRefs(const std::vector<BlockId> &blocks)
{
    vqllm_assert(blocks.size() == shards_.size(),
                "need one block per shard");
    for (std::size_t i = 0; i < shards_.size(); ++i)
        shards_[i].releaseBlockRef(blocks[i]);
}

void
ShardedKvPool::setReclaimer(std::function<void(std::uint64_t)> reclaim,
                            std::function<std::uint64_t()> reclaimable)
{
    for (auto &shard : shards_)
        shard.setReclaimer(reclaim, reclaimable);
}

std::uint64_t
ShardedKvPool::cowForks() const
{
    return shards_.front().stats().cow_forks;
}

std::uint64_t
ShardedKvPool::sharedBlocks() const
{
    std::uint64_t shared = 0;
    for (const auto &shard : shards_)
        shared += shard.sharedBlocks();
    return shared;
}

std::uint64_t
ShardedKvPool::peakBytes() const
{
    std::uint64_t bytes = 0;
    for (const auto &shard : shards_)
        bytes += shard.peakBytes();
    return bytes;
}

void
ShardedKvPool::exportMetrics(obs::MetricsRegistry &registry,
                             const std::string &prefix) const
{
    registry.counter(prefix + ".cross_shard_rollbacks")
        .add(stats_.cross_shard_rollbacks);
    registry.counter(prefix + ".failed_allocs")
        .add(stats_.failed_allocs);
    registry.gauge(prefix + ".degree")
        .set(static_cast<double>(shards_.size()));
    for (std::size_t i = 0; i < shards_.size(); ++i)
        shards_[i].exportMetrics(registry,
                                 prefix + ".shard" + std::to_string(i));
}

} // namespace vqllm::serving