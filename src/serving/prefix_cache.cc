#include "serving/prefix_cache.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vqllm::serving {

PrefixCache::PrefixCache(ShardedKvPool &pool,
                         const PrefixCacheConfig &cfg)
    : pool_(pool), cfg_(cfg)
{
    vqllm_assert(cfg_.block_tokens > 0, "block_tokens must be positive");
    vqllm_assert(cfg_.block_tokens ==
                     pool_.shard(0).config().block_tokens,
                "prefix cache block size must match the KV pools");
    pool_.setReclaimer(
        [this](std::uint64_t need) { reclaim(need); },
        [this] { return evictableBlocks(); });
}

PrefixCache::~PrefixCache()
{
    clear();
    pool_.setReclaimer({}, {});
}

std::uint64_t
PrefixCache::chainHash(std::uint64_t parent, std::int64_t group,
                       std::size_t index, std::size_t tokens)
{
    // FNV-1a over the chain-defining tuple.  group+1 keeps group 0
    // distinct from the zero byte-pattern of the root parent.
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= 0x100000001b3ull;
        }
    };
    mix(parent);
    mix(static_cast<std::uint64_t>(group) + 1);
    mix(index);
    mix(tokens);
    // Hash 0 is the reserved root parent.
    return h == 0 ? 1 : h;
}

PrefixCache::Match
PrefixCache::match(const Request &r)
{
    Match m;
    if (r.prefix_group < 0 || r.prefix_tokens == 0 || r.prompt_len < 2)
        return m;
    ++stats_.lookups;
    const std::size_t bt = cfg_.block_tokens;
    // Leave at least one prompt token to prefill: attention needs a
    // query, and a zero-token admission could not take a slice.
    const std::size_t cap =
        std::min(r.prefix_tokens, r.prompt_len - 1);
    std::uint64_t parent = 0;
    std::size_t i = 0;
    while ((i + 1) * bt <= cap) {
        std::uint64_t h = chainHash(parent, r.prefix_group, i, bt);
        auto it = nodes_.find(h);
        if (it == nodes_.end())
            break;
        m.node_hashes.push_back(h);
        m.tokens = (i + 1) * bt;
        parent = h;
        ++i;
    }
    const std::size_t partial = r.prefix_tokens % bt;
    if (partial > 0 && m.tokens == r.prefix_tokens - partial &&
        r.prefix_tokens <= cap) {
        std::uint64_t h = chainHash(parent, r.prefix_group, i, partial);
        auto it = nodes_.find(h);
        if (it != nodes_.end()) {
            m.node_hashes.push_back(h);
            m.tokens = r.prefix_tokens;
        }
    }
    return m;
}

void
PrefixCache::attach(const Request &r, const Match &m)
{
    vqllm_assert(m.tokens > 0 && !m.node_hashes.empty(),
                "attach needs a non-empty match");
    std::vector<std::vector<BlockId>> per_shard(pool_.degree());
    for (auto &list : per_shard)
        list.reserve(m.node_hashes.size());
    for (std::uint64_t h : m.node_hashes) {
        Node &n = nodes_.at(h);
        ++n.freq;
        for (std::size_t s = 0; s < pool_.degree(); ++s)
            per_shard[s].push_back(n.blocks[s]);
    }
    pool_.attachSequence(r.id, per_shard, m.tokens);
    // The matched prefix is already indexed for this sequence.
    inserted_[r.id] = m.tokens;
    ++stats_.hits;
    stats_.matched_tokens += m.tokens;
    if (trace_)
        trace_->instant("prefix_hit", "prefix", 0, trace_->now(),
                        {{"seq", static_cast<double>(r.id)},
                         {"tokens", static_cast<double>(m.tokens)}});
}

void
PrefixCache::rollbackAttach(const Request &r, const Match &m)
{
    pool_.freeSequence(r.id);
    for (std::uint64_t h : m.node_hashes)
        --nodes_.at(h).freq;
    inserted_.erase(r.id);
    --stats_.hits;
    stats_.matched_tokens -= m.tokens;
    ++stats_.rollbacks;
    if (trace_)
        trace_->instant("prefix_rollback", "prefix", 0, trace_->now(),
                        {{"seq", static_cast<double>(r.id)}});
}

void
PrefixCache::onPrefillAdvance(const Request &r)
{
    if (r.prefix_group < 0 || r.prefix_tokens == 0)
        return;
    const std::size_t bt = cfg_.block_tokens;
    const std::size_t written =
        std::min(r.prefilled_tokens, r.prefix_tokens);
    auto prog = inserted_.find(r.id);
    std::size_t done = prog == inserted_.end() ? 0 : prog->second;
    if (written <= done)
        return;
    // Recompute the chain up to the already-indexed boundary (`done`
    // is always block-aligned: a partial insert completes the prefix
    // and short-circuits above).
    std::uint64_t parent = 0;
    std::size_t i = 0;
    for (; (i + 1) * bt <= done; ++i)
        parent = chainHash(parent, r.prefix_group, i, bt);
    while ((i + 1) * bt <= written) {
        std::uint64_t h = chainHash(parent, r.prefix_group, i, bt);
        if (!insertNode(r, i, h, parent, bt, false))
            break;
        parent = h;
        ++i;
    }
    std::size_t indexed = i * bt;
    const std::size_t partial = r.prefix_tokens % bt;
    if (partial > 0 && indexed == r.prefix_tokens - partial &&
        written >= r.prefix_tokens) {
        std::uint64_t h = chainHash(parent, r.prefix_group, i, partial);
        if (insertNode(r, i, h, parent, partial, true))
            indexed = r.prefix_tokens;
    }
    inserted_[r.id] = indexed;
}

bool
PrefixCache::insertNode(const Request &r, std::size_t index,
                        std::uint64_t hash, std::uint64_t parent,
                        std::size_t tokens, bool partial)
{
    if (nodes_.count(hash) > 0)
        return true; // another in-flight request indexed it first
    if (parent != 0 && nodes_.count(parent) == 0) {
        // Parent evicted mid-prefill: keep the forest rooted.
        ++stats_.skipped_inserts;
        return false;
    }
    if (cfg_.capacity_blocks > 0 &&
        by_id_.size() >= cfg_.capacity_blocks && !evictOne(false)) {
        ++stats_.skipped_inserts;
        return false;
    }
    Node n;
    n.hash = hash;
    n.parent = parent;
    n.tokens = static_cast<std::uint32_t>(tokens);
    n.partial = partial;
    n.freq = 1;
    if (partial) {
        // The tail is not block-aligned, so the writer's own tail
        // block keeps growing past it: store the partial prefix in a
        // cache-owned block instead.
        if (!pool_.allocCacheBlocks(tokens, &n.blocks)) {
            ++stats_.skipped_inserts;
            return false;
        }
    } else {
        n.blocks.reserve(pool_.degree());
        for (std::size_t s = 0; s < pool_.degree(); ++s)
            n.blocks.push_back(pool_.shard(s).seqBlockIds(r.id)[index]);
        pool_.addBlockRefs(n.blocks);
    }
    n.id = next_node_id_++;
    if (parent != 0)
        ++nodes_.at(parent).children;
    cached_tokens_ += tokens;
    by_id_.emplace(n.id, hash);
    nodes_.emplace(hash, std::move(n));
    ++stats_.inserted_nodes;
    return true;
}

bool
PrefixCache::evictOne(bool reclaiming)
{
    // Hit-aware LFU with masked pins: candidates are leaves whose
    // block the cache alone references (shard-0 refcount 1 — running
    // sequences pin their prefixes); victim is min (freq, id), and the
    // ascending-id scan makes the oldest insertion win ties.
    const Node *victim = nullptr;
    for (const auto &[id, hash] : by_id_) {
        const Node &n = nodes_.at(hash);
        if (n.children > 0)
            continue;
        if (pool_.shard(0).blockRefs(n.blocks[0]) > 1)
            continue;
        if (victim == nullptr || n.freq < victim->freq)
            victim = &n;
    }
    if (victim == nullptr)
        return false;
    if (trace_)
        trace_->instant("prefix_evict", "prefix", 0, trace_->now(),
                        {{"node", static_cast<double>(victim->id)},
                         {"tokens",
                          static_cast<double>(victim->tokens)}});
    eraseNode(victim->hash);
    ++stats_.evicted_nodes;
    if (reclaiming)
        ++stats_.reclaimed_blocks;
    return true;
}

void
PrefixCache::eraseNode(std::uint64_t hash)
{
    auto it = nodes_.find(hash);
    vqllm_assert(it != nodes_.end(), "erasing an unknown prefix node");
    Node &n = it->second;
    vqllm_assert(n.children == 0, "erasing a prefix node with children");
    pool_.releaseBlockRefs(n.blocks);
    if (n.parent != 0)
        --nodes_.at(n.parent).children;
    cached_tokens_ -= n.tokens;
    by_id_.erase(n.id);
    nodes_.erase(it);
}

void
PrefixCache::onRelease(std::uint64_t seq_id)
{
    inserted_.erase(seq_id);
}

void
PrefixCache::reclaim(std::uint64_t need_blocks)
{
    for (std::uint64_t freed = 0; freed < need_blocks;) {
        if (!evictOne(true))
            return;
        ++freed;
    }
}

std::uint64_t
PrefixCache::evictableBlocks() const
{
    std::uint64_t count = 0;
    for (const auto &[id, hash] : by_id_) {
        const Node &n = nodes_.at(hash);
        if (n.children == 0 &&
            pool_.shard(0).blockRefs(n.blocks[0]) == 1)
            ++count;
    }
    return count;
}

void
PrefixCache::clear()
{
    // Children always carry larger ids than their parents, so a
    // descending-id sweep erases leaves first.
    while (!by_id_.empty())
        eraseNode(by_id_.rbegin()->second);
    inserted_.clear();
    cached_tokens_ = 0;
}

void
PrefixCache::exportMetrics(obs::MetricsRegistry &registry,
                           const std::string &prefix) const
{
    registry.counter(prefix + ".lookups").add(stats_.lookups);
    registry.counter(prefix + ".hits").add(stats_.hits);
    registry.counter(prefix + ".matched_tokens")
        .add(stats_.matched_tokens);
    registry.counter(prefix + ".inserted_nodes")
        .add(stats_.inserted_nodes);
    registry.counter(prefix + ".evicted_nodes")
        .add(stats_.evicted_nodes);
    registry.counter(prefix + ".reclaimed_blocks")
        .add(stats_.reclaimed_blocks);
    registry.counter(prefix + ".skipped_inserts")
        .add(stats_.skipped_inserts);
    registry.counter(prefix + ".rollbacks").add(stats_.rollbacks);
    registry.gauge(prefix + ".cached_blocks")
        .set(static_cast<double>(cachedBlocks()));
    registry.gauge(prefix + ".cached_tokens")
        .set(static_cast<double>(cachedTokens()));
}

} // namespace vqllm::serving
