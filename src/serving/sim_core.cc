#include "serving/sim_core.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "compiler/disk_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vqllm::serving {

namespace {

/** Per-shard pool configs: each device stores its KV-head share of
 *  every cached token, so per-device bytes per token are the shard's
 *  proportional slice of the scheme's full-token footprint. */
std::vector<KvBlockPoolConfig>
makeShardConfigs(std::size_t degree, std::uint64_t capacity_per_device,
                 std::size_t block_tokens, std::uint64_t total_bpt,
                 std::uint64_t kv_heads)
{
    std::vector<KvBlockPoolConfig> shard_cfgs(degree);
    for (std::size_t i = 0; i < degree; ++i) {
        std::uint64_t shard_heads = llm::shardSplit(kv_heads, degree, i);
        shard_cfgs[i].capacity_bytes = capacity_per_device;
        shard_cfgs[i].block_tokens = block_tokens;
        shard_cfgs[i].bytes_per_token = std::max<std::uint64_t>(
            (total_bpt * shard_heads + kv_heads - 1) / kv_heads, 1);
    }
    return shard_cfgs;
}

} // namespace

SimulatorCore::SimulatorCore(const SimulatorConfig &cfg)
    : cfg_(cfg),
      spec_(cfg.spec != nullptr ? *cfg.spec : gpusim::rtx4090()),
      model_(cfg.model != nullptr ? *cfg.model : llm::llama7b()),
      degree_(static_cast<std::size_t>(cfg_.tp.degree)),
      // KV storage scheme: explicit when configured, otherwise implied
      // by the weight scheme (the pre-KvScheme behaviour).
      kv_scheme_(cfg_.kv_scheme.value_or(llm::defaultKvScheme(cfg_.scheme))),
      total_bpt_(std::max<std::uint64_t>(
          llm::kvSchemeBytesPerToken(model_, kv_scheme_), 1)),
      kv_capacity_per_device_(kvCapacityPerDeviceBytes(cfg_, model_)),
      kv_capacity_bytes_(kv_capacity_per_device_ * degree_),
      pool_(makeShardConfigs(degree_, kv_capacity_per_device_,
                             cfg_.kv_block_tokens, total_bpt_,
                             model_.kvHeads())),
      scheduler_(cfg_.scheduler, pool_),
      residency_(cfg_.codebook_slots),
      metrics_(cfg_.metrics),
      trace_rec_(cfg_.trace)
{
    if (cfg_.prefix_cache) {
        PrefixCacheConfig pc_cfg;
        pc_cfg.block_tokens = cfg_.kv_block_tokens;
        pc_cfg.capacity_blocks = cfg_.prefix_capacity_blocks;
        prefix_cache_.emplace(pool_, pc_cfg);
        scheduler_.setPrefixCache(&*prefix_cache_);
    }
    // Private per-run engine unless one is injected: reports then
    // describe exactly this run, and concurrent runMany sims never
    // contend on one cache.  TP shards are identical GPUs compiling
    // identical shard shapes, so all shards price through one engine —
    // per-shard plan-cache deltas still attribute correctly because
    // the pricer snapshots around each shard's pricing.
    eng_ = cfg_.engine != nullptr ? cfg_.engine
                                  : &local_engine_.emplace(spec_);
    // Persistent second tier: sims/replicas naming one directory share
    // one store through the open() registry, so a fleet warms up from
    // a single set of on-disk artifacts.
    if (!cfg_.kernel_cache_dir.empty()) {
        disk_ = compiler::DiskCache::open(cfg_.kernel_cache_dir);
        eng_->setDiskCache(disk_);
    }
    plan_stats_before_ = eng_->stats();
    std::vector<compiler::Engine *> shard_engines(degree_, eng_);
    pricer_.emplace(shard_engines, model_, cfg_.scheme, kv_scheme_,
                    cfg_.tp, cfg_.pricer);
    has_codebooks_ = pricer_->codebookGroupBytes() > 0;

    // ---- Observability hookup.  Every instrumentation site guards on
    // its own nullptr, so a run without a recorder/registry executes
    // exactly the pre-instrumentation code path (bit-identical report).
    if (trace_rec_ != nullptr) {
        trace_rec_->setNow(0);
        trace_rec_->nameTrack(0, "scheduler");
        for (std::size_t s = 0; s < degree_; ++s)
            trace_rec_->nameTrack(1 + static_cast<int>(s),
                                  "shard " + std::to_string(s));
        scheduler_.setTrace(trace_rec_);
        pool_.setTrace(trace_rec_);
        eng_->setTrace(trace_rec_);
        if (prefix_cache_)
            prefix_cache_->setTrace(trace_rec_);
        pricer_->setCollectDetail(true);
    }
    if (cfg_.metrics != nullptr) {
        h_iter_us_ =
            &cfg_.metrics->histogram("serving.iteration.duration_us");
        h_decode_batch_ =
            &cfg_.metrics->histogram("serving.iteration.decode_batch");
    }
}

void
SimulatorCore::setNow(double us)
{
    vqllm_assert(us >= now_us_,
                 "simulated clock must not move backwards");
    now_us_ = us;
    if (trace_rec_ != nullptr)
        trace_rec_->setNow(us);
}

void
SimulatorCore::submit(Request *r)
{
    if (trace_rec_ != nullptr)
        trace_rec_->setNow(now_us_);
    scheduler_.submit(r);
}

void
SimulatorCore::step()
{
    if (trace_rec_ != nullptr)
        trace_rec_->setNow(now_us_);

    auto iter = scheduler_.next();
    if (iter.empty()) {
        // Waiting head cannot be admitted until running sequences
        // finish; with nothing running this cannot happen (submit
        // rejects requests that can never fit).
        vqllm_assert(scheduler_.runningCount() > 0,
                     "scheduler stalled with empty running set");
        // No decode and no admission: unreachable by construction
        // (decode always schedules running sequences), but guard
        // against infinite loops.
        vqllm_panic("scheduler returned an empty iteration");
    }
    ++iterations_;
    peak_running_ = std::max<std::uint64_t>(peak_running_,
                                            scheduler_.runningCount());
    for (std::size_t k = 0; k < iter.preempted; ++k)
        metrics_.recordPreemption();

    // ---- Price the iteration (mixed prefill slices + decode in one
    // launch set).
    double iter_us = pricer_->iterationUs(iter);
    if (has_codebooks_) {
        groups_.clear();
        for (const auto &chunk : iter.prefill)
            groups_.push_back(chunk.req->codebook_group);
        for (const Request *r : iter.decode)
            groups_.push_back(r->codebook_group);
        auto touch = residency_.touchBatch(groups_);
        iter_us += pricer_->codebookMissUs(touch.misses);
    }

    if (trace_rec_ != nullptr) {
        // The iteration's four price components tile [now, now +
        // iter_us] as consecutive spans: prefill, decode, comm,
        // codebook upload.  Detail spans (per chunk, per shard) nest
        // inside their tiles; category sums therefore reproduce the
        // report's busy-time breakdown.
        const IterationPricer::Breakdown &bd = pricer_->lastBreakdown();
        const IterationPricer::IterationDetail &det =
            pricer_->lastDetail();
        trace_rec_->span(
            "iteration", "iteration", 0, now_us_, iter_us,
            {{"prefill_chunks",
              static_cast<double>(iter.prefill.size())},
             {"decode_batch", static_cast<double>(iter.decode.size())}});
        double t = now_us_;
        if (bd.prefill_us > 0) {
            trace_rec_->span(
                "prefill", "prefill", 0, t, bd.prefill_us,
                {{"chunks", static_cast<double>(iter.prefill.size())}});
            double ct = t;
            for (const auto &c : det.chunks) {
                trace_rec_->span(
                    "prefill_chunk", "prefill_detail", 0, ct, c.us,
                    {{"req", static_cast<double>(c.req_id)},
                     {"tokens", static_cast<double>(c.tokens)},
                     {"context", static_cast<double>(c.context)},
                     {"last", c.last ? 1.0 : 0.0}});
                ct += c.us;
            }
            t += bd.prefill_us;
        }
        if (bd.decode_us > 0) {
            trace_rec_->span(
                "decode", "decode", 0, t, bd.decode_us,
                {{"batch", static_cast<double>(det.decode_batch)}});
            for (std::size_t s = 0; s < det.shard_compute_us.size(); ++s)
                trace_rec_->span("decode_compute", "shard_compute",
                                 1 + static_cast<int>(s), t,
                                 det.shard_compute_us[s]);
            t += bd.decode_us;
        }
        if (bd.comm_us > 0) {
            trace_rec_->span("all_reduce", "comm", 0, t, bd.comm_us);
            if (det.decode_comm_us > 0)
                for (std::size_t s = 0; s < degree_; ++s)
                    trace_rec_->span("all_reduce", "shard_comm",
                                     1 + static_cast<int>(s), t,
                                     det.decode_comm_us);
            t += bd.comm_us;
        }
        if (bd.codebook_upload_us > 0)
            trace_rec_->span("codebook_upload", "codebook", 0, t,
                             bd.codebook_upload_us);
    }
    if (h_iter_us_ != nullptr) {
        h_iter_us_->record(iter_us);
        h_decode_batch_->record(static_cast<double>(iter.decode.size()));
    }

    now_us_ += iter_us;
    busy_us_ += iter_us;

    // ---- Emit tokens and retire finished requests.
    std::vector<Request *> finished;
    for (const auto &chunk : iter.prefill) {
        metrics_.recordPrefillTokens(chunk.tokens);
        if (!chunk.last)
            continue; // partial slice: no token emitted yet
        Request *r = chunk.req;
        if (r->generated == 0 && r->first_token_us < 0) {
            // The slice completing a fresh prefill emits the request's
            // first output token.  An imported sequence recomputing
            // after preemption already produced its first token on the
            // prefill replica (first_token_us >= 0), so its recompute
            // stall lands in TBT below.
            r->first_token_us = now_us_;
            metrics_.recordTtft(now_us_ - r->arrival_us);
        } else {
            // Recompute after preemption re-runs the forward pass over
            // the full context and emits the next token; the stall
            // since the last token lands in this TBT sample.
            metrics_.recordTbt(now_us_ - r->last_token_us);
        }
        ++r->generated;
        r->last_token_us = now_us_;
        metrics_.recordDecodeTokens(1);
        if (r->done())
            finished.push_back(r);
    }
    for (Request *r : iter.decode) {
        ++r->generated;
        metrics_.recordTbt(now_us_ - r->last_token_us);
        r->last_token_us = now_us_;
        metrics_.recordDecodeTokens(1);
        if (r->done())
            finished.push_back(r);
    }
    for (Request *r : finished) {
        r->finish_us = now_us_;
        metrics_.recordE2e(now_us_ - r->arrival_us);
        scheduler_.retire(r);
        ++completed_;
        finished_.push_back(r);
    }

    // ---- KV accounting invariant: every resident sequence's pool
    // occupancy matches its bookkeeping, and a fully-prefilled
    // sequence holds exactly its context — the prefill, re-prefill and
    // imported-admission paths must never drift apart by a token.
    std::size_t running_tokens = 0;
    for (const Request *r : scheduler_.running()) {
        vqllm_assert(pool_.seqTokens(r->id) == r->prefilled_tokens,
                     "KV pool tokens diverged from request "
                     "bookkeeping for request ", r->id);
        if (r->prefill_complete)
            vqllm_assert(r->prefilled_tokens == r->contextTokens(),
                         "prefilled sequence does not hold its "
                         "context for request ", r->id);
        running_tokens += r->prefilled_tokens;
    }
    // Pool-level conservation per shard.  Without sharing, stored
    // tokens equal the per-sequence sum exactly.  With the prefix
    // cache, shared blocks store their tokens once in the pool but
    // once per owner in the sum, so the pool view is bounded by the
    // sum plus the cache-held tokens — summing seqTokens over
    // sequences would double-count shared prefixes.
    for (std::size_t s = 0; s < degree_; ++s) {
        if (!prefix_cache_)
            vqllm_assert(pool_.storedTokens(s) == running_tokens,
                         "pool stored tokens diverged from the running "
                         "set on shard ", s);
        else
            vqllm_assert(pool_.storedTokens(s) <=
                             running_tokens +
                                 prefix_cache_->cachedTokens(),
                         "pool stored tokens exceed running set plus "
                         "cached prefixes on shard ", s);
    }
}

std::uint64_t
SimulatorCore::queuedPrefillTokens() const
{
    std::uint64_t tokens = 0;
    for (const Request *r : scheduler_.waiting())
        if (!r->kv_imported)
            tokens += r->contextTokens();
    for (const Request *r : scheduler_.running())
        if (!r->prefill_complete)
            tokens += r->contextTokens() - r->prefilled_tokens;
    return tokens;
}

std::uint64_t
SimulatorCore::queuedDecodeTokens() const
{
    std::uint64_t tokens = 0;
    auto remaining = [](const Request *r) {
        return r->max_new_tokens -
               std::min(r->generated, r->max_new_tokens);
    };
    for (const Request *r : scheduler_.waiting())
        tokens += remaining(r);
    for (const Request *r : scheduler_.running())
        tokens += remaining(r);
    return tokens;
}

std::uint64_t
SimulatorCore::processedTokens() const
{
    return metrics_.prefillTokens() + metrics_.decodeTokens();
}

std::vector<Request *>
SimulatorCore::takeFinished()
{
    return std::exchange(finished_, {});
}

ServingReport
SimulatorCore::finalize()
{
    vqllm_assert(!finalized_, "SimulatorCore::finalize called twice");
    finalized_ = true;

    ServingReport report;
    report.ttft = summarize(metrics_.ttftSamples());
    report.tbt = summarize(metrics_.tbtSamples());
    report.e2e = summarize(metrics_.e2eSamples());
    report.sim_time_us = now_us_;
    report.busy_time_us = busy_us_;
    report.utilization = now_us_ > 0 ? busy_us_ / now_us_ : 0;
    report.tokens_per_sec =
        busy_us_ > 0 ? static_cast<double>(metrics_.decodeTokens()) /
                           (busy_us_ / 1e6)
                     : 0;
    report.completed_requests = completed_;
    report.rejected_requests = scheduler_.rejectedCount();
    report.preemptions = metrics_.preemptions();
    report.decode_tokens = metrics_.decodeTokens();
    report.prefill_tokens = metrics_.prefillTokens();
    report.iterations = iterations_;
    report.kv_peak_bytes = pool_.peakBytes();
    report.kv_capacity_bytes = kv_capacity_bytes_;
    report.codebook_hit_rate =
        has_codebooks_ ? residency_.stats().hitRate() : 1.0;
    const compiler::CacheStats plan_stats = eng_->stats();
    report.plan_cache_hits = plan_stats.hits - plan_stats_before_.hits;
    report.plan_cache_misses =
        plan_stats.misses - plan_stats_before_.misses;
    report.plan_cache_evictions =
        plan_stats.evictions - plan_stats_before_.evictions;
    report.prefix_cache_enabled = prefix_cache_.has_value();
    if (prefix_cache_) {
        const PrefixCacheStats &pc = prefix_cache_->stats();
        report.prefix_lookups = pc.lookups;
        report.prefix_hits = pc.hits;
        report.prefix_matched_tokens = pc.matched_tokens;
        report.prefix_evicted_blocks = pc.evicted_nodes;
        report.prefix_cached_blocks = prefix_cache_->cachedBlocks();
        report.cow_forks = pool_.cowForks();
        // Fraction of prefill demand served from cache: matched tokens
        // over matched plus actually-prefilled tokens.
        std::uint64_t demand = pc.matched_tokens + report.prefill_tokens;
        report.prefix_hit_rate =
            demand > 0 ? static_cast<double>(pc.matched_tokens) /
                             static_cast<double>(demand)
                       : 0.0;
    }
    report.kv_scheme = llm::kvSchemeToken(kv_scheme_);
    report.kv_bytes_per_token = total_bpt_;
    report.kv_capacity_multiplier =
        static_cast<double>(model_.kvCacheBytesFp16(1, 1)) /
        static_cast<double>(total_bpt_);
    report.kv_dequant_us = pricer_->kvDequantUs();
    report.peak_running_seqs = peak_running_;
    report.tp_degree = degree_;
    report.comm_us = pricer_->commUs();
    report.comm_fraction =
        busy_us_ > 0 ? pricer_->commUs() / busy_us_ : 0;
    const IterationPricer::Breakdown breakdown = pricer_->totals();
    report.prefill_us = breakdown.prefill_us;
    report.decode_us = breakdown.decode_us;
    report.codebook_upload_us = breakdown.codebook_upload_us;
    report.shards.resize(degree_);
    const auto &shard_deltas = pricer_->shardCacheDeltas();
    for (std::size_t i = 0; i < degree_; ++i) {
        report.shards[i].kv_peak_bytes = pool_.shard(i).peakBytes();
        report.shards[i].kv_capacity_bytes = kv_capacity_per_device_;
        report.shards[i].plan_cache_hits =
            shard_deltas[i].plan_cache_hits;
        report.shards[i].plan_cache_misses =
            shard_deltas[i].plan_cache_misses;
    }

    if (trace_rec_ != nullptr) {
        trace_rec_->setNow(now_us_);
        // Detach the recorder: injected engines outlive this run and
        // may compile concurrently afterwards.
        eng_->setTrace(nullptr);
    }
    if (disk_ && cfg_.engine != nullptr) {
        // Same hygiene as the trace detach: injected engines outlive
        // this run and must not keep writing to our cache directory.
        eng_->setDiskCache(nullptr);
    }
    if (cfg_.metrics != nullptr) {
        obs::MetricsRegistry &reg = *cfg_.metrics;
        pool_.exportMetrics(reg, "serving.kv");
        residency_.exportMetrics(reg, "serving.codebook");
        eng_->exportMetrics(reg, "compiler.plan_cache");
        if (disk_)
            disk_->exportMetrics(reg, "compiler.disk_cache");
        if (prefix_cache_) {
            prefix_cache_->exportMetrics(reg, "serving.kv.prefix");
            reg.gauge("serving.kv.prefix.hit_rate")
                .set(report.prefix_hit_rate);
            reg.counter("serving.kv.prefix.cow_forks")
                .add(report.cow_forks);
        }
        if (kv_scheme_ != llm::KvScheme::FP16) {
            // Gated like the report's kv_scheme section: FP16-KV
            // metric exports stay identical to pre-KvScheme builds.
            reg.gauge("serving.kv.scheme.bytes_per_token")
                .set(static_cast<double>(total_bpt_));
            reg.gauge("serving.kv.scheme.capacity_multiplier")
                .set(report.kv_capacity_multiplier);
            reg.gauge("serving.kv.scheme.dequant_us")
                .set(report.kv_dequant_us);
            reg.gauge("serving.kv.scheme.peak_running_seqs")
                .set(static_cast<double>(peak_running_));
        }
        reg.counter("serving.requests.completed").add(completed_);
        reg.counter("serving.requests.rejected")
            .add(report.rejected_requests);
        reg.counter("serving.iterations").add(iterations_);
        reg.gauge("serving.sim_time_us").set(report.sim_time_us);
        reg.gauge("serving.busy_time_us").set(report.busy_time_us);
        reg.gauge("serving.busy.prefill_us").set(report.prefill_us);
        reg.gauge("serving.busy.decode_us").set(report.decode_us);
        reg.gauge("serving.busy.comm_us").set(report.comm_us);
        reg.gauge("serving.busy.codebook_upload_us")
            .set(report.codebook_upload_us);
        reg.gauge("serving.utilization").set(report.utilization);
        reg.gauge("serving.tokens_per_sec").set(report.tokens_per_sec);
        reg.gauge("serving.tp_degree")
            .set(static_cast<double>(degree_));
    }

    // ---- Refcount leak check: with the trace drained and the cache's
    // references dropped, every block must have returned to the pools.
    if (prefix_cache_)
        prefix_cache_->clear();
    vqllm_assert(pool_.usedBlocks() == 0,
                 "KV blocks leaked after the trace drained");
    return report;
}

} // namespace vqllm::serving
