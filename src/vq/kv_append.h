/**
 * @file
 * Online KV-cache quantization (paper Sec. VII-F, "Quantization
 * Overhead").
 *
 * Weights are quantized offline, but the KV cache grows during
 * inference: the keys/values of each generated token must be quantized
 * *on the fly* against the codebooks trained at prefill time.  The
 * paper measures this overhead as negligible (<1 us per token in
 * decode; <10% of the linear projections in prefill).  This module
 * implements the mechanism — codebooks are trained once on the prompt
 * KV and new tokens are encoded incrementally — plus the GPU cost
 * model for the encode kernel.
 */
#pragma once

#include "gpusim/gpu_spec.h"
#include "vq/quantizer.h"

namespace vqllm::vq {

/**
 * Incrementally-growing quantized KV cache.
 *
 * Rows are tokens; columns are (head, channel) pairs.  Codebooks are
 * trained once from the prefill tokens and then frozen; append()
 * encodes new tokens against them (the paper's asynchronous on-the-fly
 * quantization).
 */
class KvCacheQuantizer
{
  public:
    /**
     * Train codebooks from the prompt KV and quantize it.
     *
     * @param config  VQ configuration (CQ-style per-channel-group books)
     * @param prefill [tokens, channels] prompt-phase K or V tensor
     * @param kmeans  training options
     */
    KvCacheQuantizer(VQConfig config, const Tensor<float> &prefill,
                     KMeansOptions kmeans =
                         VectorQuantizer::defaultTraining());

    /**
     * Quantize and append one new token (decode step).
     *
     * @param token_channels pointer to `channels()` new values
     */
    void append(const float *token_channels);

    /** @return tokens currently cached (prefill + appended). */
    std::size_t
    tokens() const
    {
        return cache_.rows;
    }

    /** @return channels per token. */
    std::size_t
    channels() const
    {
        return cache_.cols;
    }

    /** @return the quantized cache (valid after any append). */
    const QuantizedTensor &
    cache() const
    {
        return cache_;
    }

    /**
     * Reconstruct one cached token into out[0..channels).
     */
    void dequantizeToken(std::size_t token, float *out) const;

    /** @return encode FMA operations per appended token. */
    std::uint64_t encodeFlopsPerToken() const;

  private:
    QuantizedTensor cache_;
};

/** Modeled GPU-side cost of on-the-fly KV quantization. */
struct QuantOverheadEstimate
{
    /** Microseconds to quantize one token's K+V in one layer (the
     *  paper's "<1 us" quantity). */
    double decode_us_per_token = 0;
    /** Microseconds per decode step: all layers x batch sequences. */
    double decode_us_per_step = 0;
    /** Microseconds to quantize the full prompt KV of one layer. */
    double prefill_us_per_layer = 0;
    /** Prefill quantization / linear-projection latency ratio. */
    double prefill_fraction_of_projections = 0;
};

/**
 * Estimate the on-the-fly quantization overhead for a serving scenario
 * (encode kernels run the distance computation as a tensor-core matmul
 * against the codebook plus a scalar argmin pass).
 *
 * @param spec       target GPU
 * @param config     KV VQ configuration
 * @param batch      decode batch size
 * @param prompt_len prefill tokens
 * @param hidden     model width (K and V each have `hidden` channels)
 * @param layers     transformer layers
 */
QuantOverheadEstimate estimateQuantOverhead(const gpusim::GpuSpec &spec,
                                            const VQConfig &config,
                                            std::size_t batch,
                                            std::size_t prompt_len,
                                            std::size_t hidden,
                                            std::size_t layers);

} // namespace vqllm::vq
