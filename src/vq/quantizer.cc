#include "vq/quantizer.h"

#include <algorithm>

#include "common/logging.h"
#include "common/parallel.h"

namespace vqllm::vq {

std::size_t
QuantizedTensor::codebookUnit(std::size_t row, std::size_t subspace) const
{
    switch (config.scope) {
      case CodebookScope::PerTensor:
        return 0;
      case CodebookScope::PerChannelGroup:
        return subspace;
      case CodebookScope::PerTile: {
        std::size_t tiles_x = ceilDiv(cols, kGptvqTileCols);
        std::size_t tile_r = row / kGptvqTileRows;
        std::size_t tile_c = subspace * config.vector_size / kGptvqTileCols;
        return tile_r * tiles_x + tile_c;
      }
    }
    return 0;
}

std::size_t
QuantizedTensor::codebookTotalBytes() const
{
    std::size_t total = 0;
    for (const auto &cb : codebooks)
        total += cb.sizeBytes();
    return total;
}

VectorQuantizer::VectorQuantizer(VQConfig config, KMeansOptions kmeans)
    : config_(std::move(config)), kmeans_(kmeans)
{
    vqllm_assert(config_.vector_size >= 1, "vector size must be positive");
    vqllm_assert(config_.residuals >= 1, "need at least one stage");
}

namespace {

/** Encode-loop members per chunk (static layout). */
constexpr std::size_t kEncodeGrain = 512;

/** Rows per dequantize chunk. */
constexpr std::size_t kDequantGrain = 64;

/** Number of scope units for a tensor shape under a config. */
std::size_t
scopeUnits(const VQConfig &cfg, std::size_t rows, std::size_t cols)
{
    switch (cfg.scope) {
      case CodebookScope::PerTensor:
        return 1;
      case CodebookScope::PerChannelGroup:
        return cols / cfg.vector_size;
      case CodebookScope::PerTile:
        return ceilDiv(rows, kGptvqTileRows) * ceilDiv(cols, kGptvqTileCols);
    }
    return 1;
}

} // namespace

QuantizedTensor
VectorQuantizer::quantize(const Tensor<float> &data) const
{
    vqllm_assert(data.rank() == 2, "quantize expects [rows, cols]");
    const std::size_t rows = data.dim(0);
    const std::size_t cols = data.dim(1);
    vqllm_assert(cols % config_.vector_size == 0,
                 "cols ", cols, " not divisible by vector size ",
                 config_.vector_size);

    QuantizedTensor qt;
    qt.config = config_;
    qt.rows = rows;
    qt.cols = cols;
    qt.scope_units = scopeUnits(config_, rows, cols);
    qt.codebooks.resize(qt.scope_units * config_.residuals);
    qt.indices = BitStream(config_.indexBits());

    const std::size_t subspaces = cols / config_.vector_size;
    const unsigned vec = config_.vector_size;

    // Member (row, subspace) pairs per scope unit.
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> members(
        qt.scope_units);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t s = 0; s < subspaces; ++s)
            members[qt.codebookUnit(r, s)].emplace_back(r, s);

    // Residual buffer: starts as the data, each stage subtracts the
    // decoded approximation (paper Fig. 1: iterative residual pipeline).
    Tensor<float> residual = data;

    // Index staging area: position -> logical index.
    std::vector<std::uint32_t> staged(
        rows * subspaces * config_.residuals, 0);

    // Scope units own disjoint (row, subspace) members, so their
    // residual slices, staged indices and codebooks never alias: units
    // fit in parallel.  Inside one unit (the only unit, for PerTensor
    // scope) the encode loop parallelizes over members instead; the
    // nested parallelFor runs inline when the unit level is already
    // parallel.  Both levels use static chunking, so results are
    // bit-identical for any thread count.
    par::parallelFor(qt.scope_units, 1, [&](const par::ChunkRange &uc) {
      for (std::size_t u = uc.begin; u < uc.end; ++u) {
        const auto &mem = members[u];
        if (mem.empty())
            continue;
        for (unsigned stage = 0; stage < config_.residuals; ++stage) {
            // Gather current residual sub-vectors of this unit.  Lattice
            // codebooks are trained on magnitudes; signs are recovered by
            // the per-element sign mask at encode time.
            Tensor<float> unit_data({mem.size(), vec});
            for (std::size_t m = 0; m < mem.size(); ++m) {
                auto [r, s] = mem[m];
                for (unsigned d = 0; d < vec; ++d) {
                    float v = residual.at(r, s * vec + d);
                    unit_data.at(m, std::size_t(d)) =
                        config_.lattice ? std::abs(v) : v;
                }
            }
            // Train this stage's codebook.
            KMeansOptions opts = kmeans_;
            opts.seed = kmeans_.seed + u * 131 + stage;
            Codebook cb;
            if (config_.lattice) {
                auto km = kMeans(unit_data, config_.lattice_base_entries,
                                 opts);
                cb = Codebook::lattice(km.centroids);
            } else {
                auto km = kMeans(unit_data, config_.num_entries, opts);
                cb = Codebook::plain(km.centroids);
            }

            // Encode members against the *raw* residual (not abs) and
            // subtract the decoded value.  Members are independent:
            // each touches only its own residual sub-vector and staged
            // slot.
            par::parallelFor(
                mem.size(), kEncodeGrain,
                [&](const par::ChunkRange &c) {
                    std::vector<float> sub(vec), dec(vec);
                    for (std::size_t m = c.begin; m < c.end; ++m) {
                        auto [r, s] = mem[m];
                        for (unsigned d = 0; d < vec; ++d)
                            sub[d] = residual.at(r, s * vec + d);
                        std::uint32_t idx = cb.encode(sub.data());
                        staged[qt.indexPosition(r, s, stage)] = idx;
                        cb.decode(idx, dec.data());
                        for (unsigned d = 0; d < vec; ++d)
                            residual.at(r, s * vec + d) -= dec[d];
                    }
                });
            qt.codebooks[u * config_.residuals + stage] = std::move(cb);
        }
      }
    });

    for (std::uint32_t idx : staged)
        qt.indices.push(idx);
    return qt;
}

void
VectorQuantizer::dequantizeSubvector(const QuantizedTensor &qt,
                                     std::size_t row, std::size_t subspace,
                                     float *out)
{
    const unsigned vec = qt.config.vector_size;
    for (unsigned d = 0; d < vec; ++d)
        out[d] = 0.0f;
    std::vector<float> dec(vec);
    for (unsigned stage = 0; stage < qt.config.residuals; ++stage) {
        const Codebook &cb = qt.codebookFor(row, subspace, stage);
        std::uint32_t idx = qt.indices.get(
            qt.indexPosition(row, subspace, stage));
        cb.decode(idx, dec.data());
        for (unsigned d = 0; d < vec; ++d)
            out[d] += dec[d];
    }
}

Tensor<float>
VectorQuantizer::dequantize(const QuantizedTensor &qt)
{
    Tensor<float> out({qt.rows, qt.cols});
    const unsigned vec = qt.config.vector_size;
    par::parallelFor(qt.rows, kDequantGrain, [&](const par::ChunkRange &c) {
        // Per-chunk scratch keeps the per-lookup allocation out of the
        // inner loop.
        std::vector<float> sub(vec), dec(vec);
        for (std::size_t r = c.begin; r < c.end; ++r) {
            for (std::size_t s = 0; s < qt.subspaces(); ++s) {
                for (unsigned d = 0; d < vec; ++d)
                    sub[d] = 0.0f;
                for (unsigned stage = 0; stage < qt.config.residuals;
                     ++stage) {
                    const Codebook &cb = qt.codebookFor(r, s, stage);
                    std::uint32_t idx = qt.indices.get(
                        qt.indexPosition(r, s, stage));
                    cb.decode(idx, dec.data());
                    for (unsigned d = 0; d < vec; ++d)
                        sub[d] += dec[d];
                }
                for (unsigned d = 0; d < vec; ++d)
                    out.at(r, s * vec + d) = sub[d];
            }
        }
    });
    return out;
}

} // namespace vqllm::vq
