#include "vq/kv_append.h"

#include "common/logging.h"

namespace vqllm::vq {

KvCacheQuantizer::KvCacheQuantizer(VQConfig config,
                                   const Tensor<float> &prefill,
                                   KMeansOptions kmeans)
{
    vqllm_assert(prefill.rank() == 2,
                 "prefill must be [tokens, channels]");
    vqllm_assert(config.scope == CodebookScope::PerChannelGroup ||
                     config.scope == CodebookScope::PerTensor,
                 "KV quantization uses per-channel-group or per-tensor "
                 "books (tile scope would shift with token count)");
    VectorQuantizer quantizer(std::move(config), kmeans);
    cache_ = quantizer.quantize(prefill);
}

void
KvCacheQuantizer::append(const float *token_channels)
{
    const unsigned vec = cache_.config.vector_size;
    const std::size_t row = cache_.rows;
    std::vector<float> residual(vec), dec(vec);
    // Index layout is row-major [token][subspace][residual], so new
    // tokens append cleanly at the end of the bit stream.
    for (std::size_t s = 0; s < cache_.subspaces(); ++s) {
        for (unsigned d = 0; d < vec; ++d)
            residual[d] = token_channels[s * vec + d];
        std::size_t unit = cache_.codebookUnit(row, s);
        for (unsigned stage = 0; stage < cache_.config.residuals;
             ++stage) {
            const Codebook &cb =
                cache_.codebooks[unit * cache_.config.residuals + stage];
            std::uint32_t idx = cb.encode(residual.data());
            cache_.indices.push(idx);
            cb.decode(idx, dec.data());
            for (unsigned d = 0; d < vec; ++d)
                residual[d] -= dec[d];
        }
    }
    ++cache_.rows;
}

void
KvCacheQuantizer::dequantizeToken(std::size_t token, float *out) const
{
    vqllm_assert(token < cache_.rows, "token out of range");
    const unsigned vec = cache_.config.vector_size;
    std::vector<float> sub(vec);
    for (std::size_t s = 0; s < cache_.subspaces(); ++s) {
        VectorQuantizer::dequantizeSubvector(cache_, token, s,
                                             sub.data());
        for (unsigned d = 0; d < vec; ++d)
            out[s * vec + d] = sub[d];
    }
}

std::uint64_t
KvCacheQuantizer::encodeFlopsPerToken() const
{
    // Per sub-vector and residual: a [1, vec] x [vec, entries] distance
    // matmul (2 flops per MAC) plus the norm terms.
    return static_cast<std::uint64_t>(cache_.subspaces()) *
           cache_.config.residuals * 2 * cache_.config.vector_size *
           cache_.config.storedEntries();
}

QuantOverheadEstimate
estimateQuantOverhead(const gpusim::GpuSpec &spec, const VQConfig &config,
                      std::size_t batch, std::size_t prompt_len,
                      std::size_t hidden, std::size_t layers)
{
    QuantOverheadEstimate est;
    // K and V each contribute `hidden` channels per token per layer.
    std::uint64_t subvecs_per_token =
        2ull * hidden / config.vector_size;
    std::uint64_t flops_per_token = subvecs_per_token *
                                    config.residuals * 2 *
                                    config.vector_size *
                                    config.storedEntries();
    // Distance computations run on tensor cores; argmin is a scalar
    // reduction over the entries.
    double tensor_rate = spec.fp16_tensor_tflops * 1e12 * 0.5;
    double argmin_ops = static_cast<double>(subvecs_per_token) *
                        config.residuals * config.storedEntries();
    double scalar_rate = spec.num_sms * spec.issue_per_cycle * 0.5 *
                         spec.clockHz();

    double per_token_layer_us =
        (static_cast<double>(flops_per_token) / tensor_rate +
         argmin_ops / scalar_rate) *
        1e6;
    est.decode_us_per_token = per_token_layer_us;
    est.decode_us_per_step =
        per_token_layer_us * static_cast<double>(batch) * layers;

    est.prefill_us_per_layer = per_token_layer_us *
                               static_cast<double>(batch) *
                               static_cast<double>(prompt_len);

    // Linear projections of the prefill, per layer (QKV + O + MLP),
    // on tensor cores at GeMM efficiency.
    double proj_flops = 2.0 * static_cast<double>(batch) * prompt_len *
                        (4.0 * hidden * hidden +
                         3.0 * hidden * (hidden * 11008.0 / 4096.0));
    double proj_us =
        proj_flops / (spec.fp16_tensor_tflops * 1e12 * 0.75) * 1e6;
    est.prefill_fraction_of_projections =
        est.prefill_us_per_layer / proj_us;
    return est;
}

} // namespace vqllm::vq
