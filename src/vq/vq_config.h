/**
 * @file
 * Vector-quantization algorithm configurations (paper Tbl. I / Tbl. II).
 *
 * A VQ algorithm is described by VQ<vector_size, log2(#entries),
 * residuals> plus a *codebook scope* saying which part of the tensor each
 * codebook is trained on — the property that determines codebook-switch
 * axes (Tbl. III) and duplicated-load traffic (Sec. III-B).
 */
#pragma once

#include <cstddef>
#include <string>

#include "common/bitutils.h"

namespace vqllm::vq {

/** Which slice of the tensor shares one codebook. */
enum class CodebookScope {
    /** One codebook (per residual) for the whole tensor (QuiP#, AQLM). */
    PerTensor,
    /** One codebook per (tile_rows x tile_cols) weight tile (GPTVQ). */
    PerTile,
    /** One codebook per group of `vector_size` channels (CQ KV cache). */
    PerChannelGroup,
};

/** Complete description of a VQ algorithm configuration. */
struct VQConfig
{
    /** Human-readable name, e.g. "CQ-2". */
    std::string name;
    /** Elements quantized at once (sub-vector length). */
    unsigned vector_size = 4;
    /** Codebook entries (quantization points) per codebook. */
    std::size_t num_entries = 256;
    /** Number of residual quantization stages (1 = no residual). */
    unsigned residuals = 1;
    /** Tensor slice sharing a codebook. */
    CodebookScope scope = CodebookScope::PerTensor;
    /**
     * Lattice-structured codebook (QuiP#): num_entries logical entries
     * are generated from `lattice_base_entries` stored entries plus sign
     * bit-operations, so dequantization only ever touches the base table.
     */
    bool lattice = false;
    /** Stored entries when lattice is true. */
    std::size_t lattice_base_entries = 256;

    /** @return bits per stored index. */
    unsigned
    indexBits() const
    {
        return ceilLog2(num_entries);
    }

    /** @return equivalent quantized bits per original element. */
    double
    bitsPerElement() const
    {
        return static_cast<double>(indexBits()) * residuals / vector_size;
    }

    /** @return compressed size / FP16 size (e.g. 0.125 for 2-bit). */
    double
    compressionRatio() const
    {
        return bitsPerElement() / 16.0;
    }

    /** @return bytes of one *stored* codebook entry (FP16 elements). */
    std::size_t
    entryBytes() const
    {
        return static_cast<std::size_t>(vector_size) * 2;
    }

    /** @return entries physically stored per codebook. */
    std::size_t
    storedEntries() const
    {
        return lattice ? lattice_base_entries : num_entries;
    }

    /** @return bytes of one stored codebook (entries x entry bytes). */
    std::size_t
    codebookBytes() const
    {
        return storedEntries() * entryBytes();
    }

    /** @return "VQ<v,b,r>" notation used throughout the paper. */
    std::string notation() const;
};

/** QuiP#-4: VQ<8,16,2>, lattice codebook, per-tensor scope, 4-bit. */
VQConfig quip4();

/** AQLM-3: VQ<8,12,2>, per-tensor scope, unaligned 12-bit indices. */
VQConfig aqlm3();

/** GPTVQ-2: VQ<4,8,1>, per-(256,256)-tile codebooks, 2-bit. */
VQConfig gptvq2();

/** CQ-4: VQ<2,8,1>, per-channel-group codebooks, 4-bit KV cache. */
VQConfig cq4();

/** CQ-2: VQ<4,8,1>, per-channel-group codebooks, 2-bit KV cache. */
VQConfig cq2();

/** All five paper configurations (Tbl. II order). */
const std::vector<VQConfig> &paperConfigs();

/** GPTVQ tile extent (one codebook per 256x256 weight tile). */
inline constexpr std::size_t kGptvqTileRows = 256;
inline constexpr std::size_t kGptvqTileCols = 256;

} // namespace vqllm::vq
