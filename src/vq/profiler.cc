#include "vq/profiler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace vqllm::vq {

std::uint64_t
AccessHistogram::total() const
{
    return std::accumulate(counts.begin(), counts.end(),
                           std::uint64_t{0});
}

double
AccessHistogram::mean() const
{
    if (counts.empty())
        return 0;
    return static_cast<double>(total()) /
           static_cast<double>(counts.size());
}

double
AccessHistogram::stddev() const
{
    if (counts.empty())
        return 0;
    double mu = mean();
    double acc = 0;
    for (auto c : counts) {
        double d = static_cast<double>(c) - mu;
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(counts.size()));
}

std::size_t
AccessHistogram::entriesAbove(double k_sigma) const
{
    double threshold = mean() + k_sigma * stddev();
    std::size_t n = 0;
    for (auto c : counts)
        if (static_cast<double>(c) > threshold)
            ++n;
    return n;
}

double
AccessHistogram::fractionBelowMean() const
{
    if (counts.empty())
        return 0;
    double mu = mean();
    std::size_t n = 0;
    for (auto c : counts)
        if (static_cast<double>(c) < mu)
            ++n;
    return static_cast<double>(n) / static_cast<double>(counts.size());
}

std::vector<std::uint32_t>
AccessHistogram::frequencyOrder() const
{
    std::vector<std::uint32_t> order(counts.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return counts[a] > counts[b];
                     });
    return order;
}

ProfileResult
profileAccesses(const QuantizedTensor &qt, std::size_t rows_per_block)
{
    ProfileResult res;
    res.histograms.resize(qt.codebooks.size());
    for (std::size_t c = 0; c < qt.codebooks.size(); ++c)
        res.histograms[c].counts.assign(qt.codebooks[c].storedEntries(),
                                        0);

    const std::size_t num_blocks =
        rows_per_block == 0 ? 1 : ceilDiv(qt.rows, rows_per_block);
    res.block_histograms.resize(num_blocks);
    for (auto &h : res.block_histograms)
        h.counts.assign(qt.codebooks.empty()
                            ? 0
                            : qt.codebooks[0].storedEntries(),
                        0);

    for (std::size_t r = 0; r < qt.rows; ++r) {
        std::size_t block = rows_per_block == 0 ? 0 : r / rows_per_block;
        for (std::size_t s = 0; s < qt.subspaces(); ++s) {
            std::size_t unit = qt.codebookUnit(r, s);
            for (unsigned stage = 0; stage < qt.config.residuals;
                 ++stage) {
                std::size_t cb_id = unit * qt.config.residuals + stage;
                const Codebook &cb = qt.codebooks[cb_id];
                std::uint32_t logical = qt.indices.get(
                    qt.indexPosition(r, s, stage));
                std::uint32_t stored = cb.storedIndexOf(logical);
                ++res.histograms[cb_id].counts[stored];
                if (cb_id == 0)
                    ++res.block_histograms[block].counts[stored];
            }
        }
    }
    return res;
}

ProfileResult
reorderByFrequency(QuantizedTensor &qt)
{
    ProfileResult profile = profileAccesses(qt);

    // Reorder every codebook and remember the old->new index maps.
    std::vector<std::vector<std::uint32_t>> inverse(qt.codebooks.size());
    for (std::size_t c = 0; c < qt.codebooks.size(); ++c) {
        auto perm = profile.histograms[c].frequencyOrder();
        inverse[c] = qt.codebooks[c].reorder(perm);
    }

    // Rewrite the packed index stream with the new entry numbering.
    BitStream rewritten(qt.indices.bitsPerValue());
    for (std::size_t r = 0; r < qt.rows; ++r) {
        for (std::size_t s = 0; s < qt.subspaces(); ++s) {
            std::size_t unit = qt.codebookUnit(r, s);
            for (unsigned stage = 0; stage < qt.config.residuals;
                 ++stage) {
                std::size_t cb_id = unit * qt.config.residuals + stage;
                const Codebook &cb = qt.codebooks[cb_id];
                std::uint32_t logical = qt.indices.get(
                    qt.indexPosition(r, s, stage));
                std::uint32_t remapped;
                if (cb.isLattice()) {
                    unsigned base_bits = ceilLog2(cb.storedEntries());
                    std::uint32_t base = logical &
                                         ((1u << base_bits) - 1);
                    std::uint32_t signs = logical >> base_bits;
                    remapped = inverse[cb_id][base] |
                               (signs << base_bits);
                } else {
                    remapped = inverse[cb_id][logical];
                }
                rewritten.push(remapped);
            }
        }
    }
    qt.indices = std::move(rewritten);
    return profile;
}

AccessHistogram
syntheticZipfHistogram(std::size_t entries, double alpha)
{
    AccessHistogram hist;
    auto weights = powerLawWeights(entries, alpha);
    hist.counts.resize(entries);
    for (std::size_t i = 0; i < entries; ++i)
        hist.counts[i] =
            static_cast<std::uint64_t>(weights[i] * 100000.0) + 1;
    return hist;
}

} // namespace vqllm::vq
