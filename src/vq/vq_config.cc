#include "vq/vq_config.h"

#include <sstream>
#include <vector>

namespace vqllm::vq {

std::string
VQConfig::notation() const
{
    std::ostringstream oss;
    oss << "VQ<" << vector_size << "," << indexBits() << "," << residuals
        << ">";
    return oss.str();
}

VQConfig
quip4()
{
    VQConfig c;
    c.name = "QuiP#-4";
    c.vector_size = 8;
    c.num_entries = 65536;
    c.residuals = 2;
    c.scope = CodebookScope::PerTensor;
    c.lattice = true;
    c.lattice_base_entries = 256;
    return c;
}

VQConfig
aqlm3()
{
    VQConfig c;
    c.name = "AQLM-3";
    c.vector_size = 8;
    c.num_entries = 4096;
    c.residuals = 2;
    c.scope = CodebookScope::PerTensor;
    return c;
}

VQConfig
gptvq2()
{
    VQConfig c;
    c.name = "GPTVQ-2";
    c.vector_size = 4;
    c.num_entries = 256;
    c.residuals = 1;
    c.scope = CodebookScope::PerTile;
    return c;
}

VQConfig
cq4()
{
    VQConfig c;
    c.name = "CQ-4";
    c.vector_size = 2;
    c.num_entries = 256;
    c.residuals = 1;
    c.scope = CodebookScope::PerChannelGroup;
    return c;
}

VQConfig
cq2()
{
    VQConfig c;
    c.name = "CQ-2";
    c.vector_size = 4;
    c.num_entries = 256;
    c.residuals = 1;
    c.scope = CodebookScope::PerChannelGroup;
    return c;
}

const std::vector<VQConfig> &
paperConfigs()
{
    static const std::vector<VQConfig> configs = {
        quip4(), aqlm3(), gptvq2(), cq4(), cq2(),
    };
    return configs;
}

} // namespace vqllm::vq
