/**
 * @file
 * K-means clustering — the training core of every VQ algorithm
 * (paper Sec. II-A: "this cross-element information is gathered through
 * clustering ... using cluster centroids to represent nearby vectors").
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace vqllm::vq {

/** Options controlling a k-means run. */
struct KMeansOptions
{
    /** Maximum Lloyd iterations. */
    int max_iters = 25;
    /** Relative inertia improvement below which iteration stops. */
    double tol = 1e-4;
    /** RNG seed (k-means++ initialization and empty-cluster reseeding). */
    std::uint64_t seed = 0x5eedu;
    /**
     * If positive and smaller than the dataset, fit on a deterministic
     * subsample of this many rows (final assignment still covers all
     * rows).  Keeps paper-scale tensors trainable on the host.
     */
    std::size_t sample_limit = 0;
};

/** Result of a k-means run. */
struct KMeansResult
{
    /** [k, dim] cluster centroids. */
    Tensor<float> centroids;
    /** Cluster index per input row. */
    std::vector<std::uint32_t> assignments;
    /** Final sum of squared distances to assigned centroids. */
    double inertia = 0;
    /** Lloyd iterations actually executed. */
    int iterations = 0;
};

/**
 * Run k-means with k-means++ initialization.
 *
 * @param data [n, dim] input rows
 * @param k    number of clusters (1 <= k; if k >= n, centroids replicate
 *             data rows)
 * @param opts options (determinism is guaranteed for fixed opts.seed)
 */
KMeansResult kMeans(const Tensor<float> &data, std::size_t k,
                    const KMeansOptions &opts = KMeansOptions{});

/**
 * Assign each row of `data` to the nearest centroid.
 *
 * @return per-row centroid indices
 */
std::vector<std::uint32_t> assignToNearest(const Tensor<float> &data,
                                           const Tensor<float> &centroids);

/** @return squared Euclidean distance between row `a` of A and `b` of B. */
double rowDistanceSq(const Tensor<float> &A, std::size_t a,
                     const Tensor<float> &B, std::size_t b);

} // namespace vqllm::vq
