/**
 * @file
 * Codebooks: trained quantization points for VQ (paper Fig. 1).
 *
 * A plain codebook stores `num_entries` FP16 sub-vectors.  A lattice
 * codebook (QuiP#-style) exposes a much larger *logical* entry space —
 * every stored base entry expanded by per-element sign flips — while only
 * storing a small base table: "though it has 65536 entries, it only needs
 * to look up from 256 of them every dequantization with bit operations"
 * (paper Tbl. II footnote).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace vqllm::vq {

/** A VQ codebook (plain or lattice-structured). */
class Codebook
{
  public:
    Codebook() = default;

    /**
     * Build a plain codebook.
     *
     * @param entries [num_entries, vector_size] centroid table; values are
     *                rounded through FP16 to model on-device storage
     */
    static Codebook plain(const Tensor<float> &entries);

    /**
     * Build a lattice codebook from non-negative base entries.
     *
     * Logical index layout: low bits select the base entry, high
     * `vector_size` bits are a per-element sign mask.
     *
     * @param base_entries [base, vector_size]; absolute values are taken
     */
    static Codebook lattice(const Tensor<float> &base_entries);

    /** @return sub-vector length. */
    unsigned vectorSize() const { return vectorSize_; }

    /** @return addressable entries (lattice: base * 2^vector_size). */
    std::size_t logicalEntries() const { return logicalEntries_; }

    /** @return physically stored entries. */
    std::size_t storedEntries() const { return entries_.dim(0); }

    /** @return true for a lattice-structured codebook. */
    bool isLattice() const { return lattice_; }

    /** @return bytes of the stored table (FP16 elements). */
    std::size_t
    sizeBytes() const
    {
        return storedEntries() * vectorSize_ * 2;
    }

    /**
     * Decode a logical index into `out[0..vector_size)`.
     *
     * For lattice codebooks this performs the base lookup plus sign
     * bit-operations.
     */
    void decode(std::uint32_t index, float *out) const;

    /**
     * Find the logical index minimizing squared error to `sub`.
     *
     * @param sub pointer to vector_size elements
     * @param err if non-null, receives the squared error of the choice
     */
    std::uint32_t encode(const float *sub, double *err = nullptr) const;

    /**
     * @return the stored index actually fetched when decoding `index`
     *         (identity for plain books; base index for lattice books).
     *         This is what access-frequency profiling must count.
     */
    std::uint32_t
    storedIndexOf(std::uint32_t index) const
    {
        return lattice_ ? index & (static_cast<std::uint32_t>(
                                       entries_.dim(0)) -
                                   1)
                        : index;
    }

    /** @return the stored entry table. */
    const Tensor<float> &entries() const { return entries_; }

    /**
     * Reorder stored entries by a permutation (codebook-cache frequency
     * reordering, paper Sec. V-B).  `perm[new_index] = old_index`.
     * Returns the inverse map old_index -> new_index so quantized data
     * can be rewritten.
     */
    std::vector<std::uint32_t> reorder(const std::vector<std::uint32_t>
                                           &perm);

  private:
    Tensor<float> entries_;  // stored table [stored, vector_size]
    unsigned vectorSize_ = 0;
    std::size_t logicalEntries_ = 0;
    bool lattice_ = false;
};

} // namespace vqllm::vq
