#include "vq/codebook.h"

#include <cmath>
#include <limits>

#include "common/bitutils.h"
#include "common/logging.h"
#include "common/simd.h"

namespace vqllm::vq {

Codebook
Codebook::plain(const Tensor<float> &entries)
{
    vqllm_assert(entries.rank() == 2, "entries must be [n, vec]");
    Codebook cb;
    cb.entries_ = entries;
    // Round through FP16: codebooks are stored in half precision.
    for (std::size_t i = 0; i < cb.entries_.size(); ++i)
        cb.entries_[i] = roundToHalf(cb.entries_[i]);
    cb.vectorSize_ = static_cast<unsigned>(entries.dim(1));
    cb.logicalEntries_ = entries.dim(0);
    cb.lattice_ = false;
    return cb;
}

Codebook
Codebook::lattice(const Tensor<float> &base_entries)
{
    vqllm_assert(base_entries.rank() == 2, "entries must be [n, vec]");
    vqllm_assert(isPowerOfTwo(base_entries.dim(0)),
                 "lattice base must be a power of two");
    Codebook cb;
    cb.entries_ = base_entries;
    for (std::size_t i = 0; i < cb.entries_.size(); ++i)
        cb.entries_[i] = roundToHalf(std::abs(cb.entries_[i]));
    cb.vectorSize_ = static_cast<unsigned>(base_entries.dim(1));
    vqllm_assert(cb.vectorSize_ <= 16, "sign mask limited to 16 elements");
    cb.logicalEntries_ = base_entries.dim(0) << cb.vectorSize_;
    cb.lattice_ = true;
    return cb;
}

void
Codebook::decode(std::uint32_t index, float *out) const
{
    vqllm_assert(index < logicalEntries_, "index ", index,
                 " out of range ", logicalEntries_);
    if (!lattice_) {
        const float *src = entries_.data() +
                           static_cast<std::size_t>(index) * vectorSize_;
        for (unsigned d = 0; d < vectorSize_; ++d)
            out[d] = src[d];
        return;
    }
    std::uint32_t base_mask =
        static_cast<std::uint32_t>(entries_.dim(0)) - 1;
    std::uint32_t base = index & base_mask;
    std::uint32_t signs = index >> ceilLog2(entries_.dim(0));
    const float *src =
        entries_.data() + static_cast<std::size_t>(base) * vectorSize_;
    for (unsigned d = 0; d < vectorSize_; ++d)
        out[d] = (signs >> d) & 1 ? -src[d] : src[d];
}

std::uint32_t
Codebook::encode(const float *sub, double *err) const
{
    double best = std::numeric_limits<double>::max();
    std::uint32_t best_idx = 0;

    if (!lattice_) {
        const std::size_t n = entries_.dim(0);
        const float *cand = entries_.data();
        for (std::size_t e = 0; e < n; ++e, cand += vectorSize_) {
            double d = simd::squaredDistance(sub, cand, vectorSize_);
            if (d < best) {
                best = d;
                best_idx = static_cast<std::uint32_t>(e);
            }
        }
        if (err) {
            // Selection runs in float SIMD; report the chosen entry's
            // error in double so error comparisons against the
            // double-precision lattice search stay exact.
            const float *chosen =
                entries_.data() +
                static_cast<std::size_t>(best_idx) * vectorSize_;
            best = 0;
            for (unsigned k = 0; k < vectorSize_; ++k) {
                double diff = static_cast<double>(sub[k]) - chosen[k];
                best += diff * diff;
            }
        }
    } else {
        // For each base entry the optimal sign of element k is the sign
        // of sub[k] (base entries are non-negative), so the search is
        // O(base * vec) rather than O(logical * vec).
        const std::size_t n = entries_.dim(0);
        unsigned base_bits = ceilLog2(n);
        for (std::size_t e = 0; e < n; ++e) {
            const float *cand = entries_.data() + e * vectorSize_;
            double d = 0;
            std::uint32_t mask = 0;
            for (unsigned k = 0; k < vectorSize_; ++k) {
                double x = sub[k];
                double pos = x - cand[k];
                double neg = x + cand[k];
                if (neg * neg < pos * pos) {
                    mask |= 1u << k;
                    d += neg * neg;
                } else {
                    d += pos * pos;
                }
            }
            if (d < best) {
                best = d;
                best_idx = static_cast<std::uint32_t>(e) |
                           (mask << base_bits);
            }
        }
    }
    if (err)
        *err = best;
    return best_idx;
}

std::vector<std::uint32_t>
Codebook::reorder(const std::vector<std::uint32_t> &perm)
{
    vqllm_assert(perm.size() == storedEntries(),
                 "permutation must cover all stored entries");
    Tensor<float> reordered({storedEntries(), vectorSize_});
    std::vector<std::uint32_t> inverse(perm.size());
    std::vector<bool> seen(perm.size(), false);
    for (std::uint32_t new_idx = 0; new_idx < perm.size(); ++new_idx) {
        std::uint32_t old_idx = perm[new_idx];
        vqllm_assert(old_idx < perm.size() && !seen[old_idx],
                     "perm is not a permutation");
        seen[old_idx] = true;
        inverse[old_idx] = new_idx;
        for (unsigned d = 0; d < vectorSize_; ++d)
            reordered.at(std::size_t(new_idx), std::size_t(d)) =
                entries_.at(std::size_t(old_idx), std::size_t(d));
    }
    entries_ = std::move(reordered);
    return inverse;
}

} // namespace vqllm::vq
