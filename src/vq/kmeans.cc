#include "vq/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/simd.h"

namespace vqllm::vq {

double
rowDistanceSq(const Tensor<float> &A, std::size_t a, const Tensor<float> &B,
              std::size_t b)
{
    vqllm_assert(A.dim(1) == B.dim(1), "dim mismatch");
    const std::size_t dim = A.dim(1);
    return simd::squaredDistance(A.data() + a * dim, B.data() + b * dim,
                                 dim);
}

namespace {

/** Rows per assignment chunk (static layout — see common/parallel.h). */
constexpr std::size_t kAssignGrain = 256;

/** Nearest centroid of one row: (centroid index, squared distance). */
std::pair<std::uint32_t, double>
nearestCentroid(const float *row, const Tensor<float> &centroids)
{
    const std::size_t k = centroids.dim(0);
    const std::size_t dim = centroids.dim(1);
    float best = std::numeric_limits<float>::max();
    std::uint32_t best_c = 0;
    const float *cand = centroids.data();
    for (std::size_t c = 0; c < k; ++c, cand += dim) {
        float d = simd::squaredDistance(row, cand, dim);
        if (d < best) {
            best = d;
            best_c = static_cast<std::uint32_t>(c);
        }
    }
    return {best_c, static_cast<double>(best)};
}

/**
 * Assign every row to its nearest centroid (the single nearest-centroid
 * loop shared by assignToNearest and the Lloyd assignment step).
 *
 * @param assign receives the per-row centroid index (size n)
 * @return total inertia, reduced in chunk order (deterministic for any
 *         thread count)
 */
double
assignRows(const Tensor<float> &data, const Tensor<float> &centroids,
           std::vector<std::uint32_t> &assign)
{
    const std::size_t n = data.dim(0);
    const std::size_t dim = data.dim(1);
    return par::parallelSum<double>(
        n, kAssignGrain, [&](const par::ChunkRange &c) {
            double inertia = 0;
            for (std::size_t i = c.begin; i < c.end; ++i) {
                auto [best_c, d] =
                    nearestCentroid(data.data() + i * dim, centroids);
                assign[i] = best_c;
                inertia += d;
            }
            return inertia;
        });
}

/** Pick initial centroids with k-means++ (D^2 weighting). */
Tensor<float>
kMeansPlusPlusInit(const Tensor<float> &data, std::size_t k, Rng &rng)
{
    const std::size_t n = data.dim(0);
    const std::size_t dim = data.dim(1);
    Tensor<float> centroids({k, dim});

    std::size_t first = rng.uniformInt(n);
    for (std::size_t d = 0; d < dim; ++d)
        centroids.at(std::size_t(0), d) = data.at(first, d);

    std::vector<double> dist_sq(n, std::numeric_limits<double>::max());
    for (std::size_t c = 1; c < k; ++c) {
        // Update distances against the last added centroid; rows are
        // independent and the total reduces in chunk order.
        const float *last = centroids.data() + (c - 1) * dim;
        double total = par::parallelSum<double>(
            n, kAssignGrain, [&](const par::ChunkRange &ch) {
                double part = 0;
                for (std::size_t i = ch.begin; i < ch.end; ++i) {
                    double d = simd::squaredDistance(
                        data.data() + i * dim, last, dim);
                    dist_sq[i] = std::min(dist_sq[i], d);
                    part += dist_sq[i];
                }
                return part;
            });
        std::size_t chosen;
        if (total <= 0) {
            chosen = rng.uniformInt(n); // all points identical
        } else {
            double r = rng.uniform() * total;
            double acc = 0;
            chosen = n - 1;
            for (std::size_t i = 0; i < n; ++i) {
                acc += dist_sq[i];
                if (r < acc) {
                    chosen = i;
                    break;
                }
            }
        }
        for (std::size_t d = 0; d < dim; ++d)
            centroids.at(c, d) = data.at(chosen, d);
    }
    return centroids;
}

/** Deterministically subsample `limit` rows of data. */
Tensor<float>
subsample(const Tensor<float> &data, std::size_t limit, Rng &rng)
{
    const std::size_t n = data.dim(0);
    const std::size_t dim = data.dim(1);
    Tensor<float> out({limit, dim});
    for (std::size_t i = 0; i < limit; ++i) {
        std::size_t src = rng.uniformInt(n);
        for (std::size_t d = 0; d < dim; ++d)
            out.at(i, d) = data.at(src, d);
    }
    return out;
}

} // namespace

std::vector<std::uint32_t>
assignToNearest(const Tensor<float> &data, const Tensor<float> &centroids)
{
    std::vector<std::uint32_t> assign(data.dim(0), 0);
    assignRows(data, centroids, assign);
    return assign;
}

KMeansResult
kMeans(const Tensor<float> &data, std::size_t k, const KMeansOptions &opts)
{
    vqllm_assert(data.rank() == 2, "k-means expects [n, dim] data");
    vqllm_assert(k >= 1, "k must be positive");
    const std::size_t n = data.dim(0);
    const std::size_t dim = data.dim(1);
    vqllm_assert(n >= 1, "k-means needs at least one row");

    Rng rng(opts.seed);

    // Optionally fit on a subsample for paper-scale tensors.
    const bool sampled = opts.sample_limit > 0 && opts.sample_limit < n;
    Tensor<float> fit_storage;
    if (sampled)
        fit_storage = subsample(data, opts.sample_limit, rng);
    const Tensor<float> &fit = sampled ? fit_storage : data;
    const std::size_t fn = fit.dim(0);

    KMeansResult res;
    res.centroids = kMeansPlusPlusInit(fit, k, rng);

    std::vector<std::uint32_t> fit_assign(fn, 0);
    double prev_inertia = std::numeric_limits<double>::max();

    for (int iter = 0; iter < opts.max_iters; ++iter) {
        res.iterations = iter + 1;
        // Assignment step (parallel; deterministic chunk-order reduce).
        double inertia = assignRows(fit, res.centroids, fit_assign);

        // Update step (double accumulation for stability; serial — it
        // is O(n*dim) against the assignment's O(n*k*dim)).
        std::vector<double> sums(k * dim, 0.0);
        std::vector<std::size_t> counts(k, 0);
        for (std::size_t i = 0; i < fn; ++i) {
            std::uint32_t c = fit_assign[i];
            ++counts[c];
            for (std::size_t d = 0; d < dim; ++d)
                sums[c * dim + d] += fit.at(i, d);
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0) {
                // Reseed an empty cluster at a random data row.
                std::size_t src = rng.uniformInt(fn);
                for (std::size_t d = 0; d < dim; ++d)
                    res.centroids.at(c, d) = fit.at(src, d);
                continue;
            }
            for (std::size_t d = 0; d < dim; ++d)
                res.centroids.at(c, d) = static_cast<float>(
                    sums[c * dim + d] / static_cast<double>(counts[c]));
        }

        res.inertia = inertia;
        if (prev_inertia < std::numeric_limits<double>::max()) {
            double rel = (prev_inertia - inertia) /
                         std::max(prev_inertia, 1e-30);
            if (rel >= 0 && rel < opts.tol)
                break;
        }
        prev_inertia = inertia;
    }

    // Final assignment over the full dataset.
    res.assignments = assignToNearest(data, res.centroids);
    if (sampled) {
        // Recompute inertia on the full data for a meaningful metric.
        res.inertia = par::parallelSum<double>(
            n, kAssignGrain, [&](const par::ChunkRange &c) {
                double part = 0;
                for (std::size_t i = c.begin; i < c.end; ++i)
                    part += rowDistanceSq(data, i, res.centroids,
                                          res.assignments[i]);
                return part;
            });
    }
    return res;
}

} // namespace vqllm::vq
