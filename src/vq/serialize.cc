#include "vq/serialize.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.h"

namespace vqllm::vq {

namespace {

constexpr char kMagic[4] = {'V', 'Q', 'L', 'T'};

template <typename T>
void
writePod(std::ostream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &in)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!in)
        vqllm_fatal("truncated quantized-tensor artifact");
    return value;
}

void
writeString(std::ostream &out, const std::string &s)
{
    writePod<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
readString(std::istream &in)
{
    auto len = readPod<std::uint32_t>(in);
    vqllm_assert(len < (1u << 20), "unreasonable string length");
    std::string s(len, '\0');
    in.read(s.data(), len);
    if (!in)
        vqllm_fatal("truncated quantized-tensor artifact");
    return s;
}

void
writeCodebook(std::ostream &out, const Codebook &cb)
{
    writePod<std::uint8_t>(out, cb.isLattice() ? 1 : 0);
    writePod<std::uint64_t>(out, cb.storedEntries());
    writePod<std::uint32_t>(out, cb.vectorSize());
    // Entries as FP16 bit patterns (the storage format).
    for (std::size_t i = 0; i < cb.entries().size(); ++i)
        writePod<std::uint16_t>(out,
                                Half(cb.entries()[i]).bits());
}

Codebook
readCodebook(std::istream &in)
{
    bool lattice = readPod<std::uint8_t>(in) != 0;
    auto stored = readPod<std::uint64_t>(in);
    auto vec = readPod<std::uint32_t>(in);
    vqllm_assert(stored > 0 && vec > 0 && stored < (1ull << 24),
                 "implausible codebook header");
    Tensor<float> entries(
        {static_cast<std::size_t>(stored), static_cast<std::size_t>(vec)});
    for (std::size_t i = 0; i < entries.size(); ++i)
        entries[i] = halfBitsToFloat(readPod<std::uint16_t>(in));
    // plain()/lattice() re-round through FP16 (idempotent) and re-apply
    // abs() for lattice bases (already non-negative, also idempotent).
    return lattice ? Codebook::lattice(entries)
                   : Codebook::plain(entries);
}

} // namespace

void
saveQuantizedTensor(const QuantizedTensor &qt, std::ostream &out)
{
    out.write(kMagic, 4);
    writePod<std::uint32_t>(out, kQuantFormatVersion);

    // Config.
    writeString(out, qt.config.name);
    writePod<std::uint32_t>(out, qt.config.vector_size);
    writePod<std::uint64_t>(out, qt.config.num_entries);
    writePod<std::uint32_t>(out, qt.config.residuals);
    writePod<std::uint32_t>(out,
                            static_cast<std::uint32_t>(qt.config.scope));
    writePod<std::uint8_t>(out, qt.config.lattice ? 1 : 0);
    writePod<std::uint64_t>(out, qt.config.lattice_base_entries);

    // Shape.
    writePod<std::uint64_t>(out, qt.rows);
    writePod<std::uint64_t>(out, qt.cols);
    writePod<std::uint64_t>(out, qt.scope_units);

    // Codebooks.
    writePod<std::uint32_t>(out,
                            static_cast<std::uint32_t>(
                                qt.codebooks.size()));
    for (const auto &cb : qt.codebooks)
        writeCodebook(out, cb);

    // Index stream.
    writePod<std::uint32_t>(out, qt.indices.bitsPerValue());
    writePod<std::uint64_t>(out, qt.indices.size());
    writePod<std::uint64_t>(out, qt.indices.bytes().size());
    out.write(reinterpret_cast<const char *>(qt.indices.bytes().data()),
              static_cast<std::streamsize>(qt.indices.bytes().size()));
}

QuantizedTensor
loadQuantizedTensor(std::istream &in)
{
    char magic[4];
    in.read(magic, 4);
    if (!in || std::memcmp(magic, kMagic, 4) != 0)
        vqllm_fatal("not a VQ-LLM quantized-tensor artifact");
    auto version = readPod<std::uint32_t>(in);
    if (version != kQuantFormatVersion)
        vqllm_fatal("unsupported artifact version ", version);

    QuantizedTensor qt;
    qt.config.name = readString(in);
    qt.config.vector_size = readPod<std::uint32_t>(in);
    qt.config.num_entries = readPod<std::uint64_t>(in);
    qt.config.residuals = readPod<std::uint32_t>(in);
    qt.config.scope =
        static_cast<CodebookScope>(readPod<std::uint32_t>(in));
    qt.config.lattice = readPod<std::uint8_t>(in) != 0;
    qt.config.lattice_base_entries = readPod<std::uint64_t>(in);

    qt.rows = readPod<std::uint64_t>(in);
    qt.cols = readPod<std::uint64_t>(in);
    qt.scope_units = readPod<std::uint64_t>(in);

    auto num_books = readPod<std::uint32_t>(in);
    vqllm_assert(num_books < (1u << 24), "implausible codebook count");
    qt.codebooks.reserve(num_books);
    for (std::uint32_t b = 0; b < num_books; ++b)
        qt.codebooks.push_back(readCodebook(in));

    auto bits = readPod<std::uint32_t>(in);
    auto count = readPod<std::uint64_t>(in);
    auto payload = readPod<std::uint64_t>(in);
    vqllm_assert(payload < (1ull << 40), "implausible payload size");
    std::vector<std::uint8_t> bytes(payload);
    in.read(reinterpret_cast<char *>(bytes.data()),
            static_cast<std::streamsize>(payload));
    if (!in)
        vqllm_fatal("truncated quantized-tensor artifact");
    qt.indices = BitStream::fromBytes(bits, count, std::move(bytes));
    return qt;
}

void
saveQuantizedTensorFile(const QuantizedTensor &qt,
                        const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        vqllm_fatal("cannot open ", path, " for writing");
    saveQuantizedTensor(qt, out);
}

QuantizedTensor
loadQuantizedTensorFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        vqllm_fatal("cannot open ", path);
    return loadQuantizedTensor(in);
}

} // namespace vqllm::vq
