/**
 * @file
 * Binary serialization of quantized tensors.
 *
 * A deployed VQ-LLM model ships quantized weights as artifacts: packed
 * index streams plus trained codebooks.  This module defines a simple
 * versioned binary format so quantization (expensive, offline) and
 * serving (cheap, online) can run in separate processes.
 */
#pragma once

#include <iosfwd>
#include <string>

#include "vq/quantizer.h"

namespace vqllm::vq {

/** Write a quantized tensor to a binary stream. */
void saveQuantizedTensor(const QuantizedTensor &qt, std::ostream &out);

/**
 * Read a quantized tensor from a binary stream.
 *
 * Fails (vqllm_fatal) on magic/version mismatch or truncation — a
 * corrupt artifact is a deployment error, not a library bug.
 */
QuantizedTensor loadQuantizedTensor(std::istream &in);

/** Convenience: save to a file path. */
void saveQuantizedTensorFile(const QuantizedTensor &qt,
                             const std::string &path);

/** Convenience: load from a file path. */
QuantizedTensor loadQuantizedTensorFile(const std::string &path);

/** Current on-disk format version. */
inline constexpr std::uint32_t kQuantFormatVersion = 1;

} // namespace vqllm::vq
