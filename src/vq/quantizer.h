/**
 * @file
 * The full VQ quantization/dequantization pipeline (paper Fig. 1).
 *
 * quantize(): split rows into sub-vectors, train per-scope codebooks with
 * k-means, encode indices, then iterate on residuals.  dequantize(): look
 * up each residual's entry and accumulate, then concatenate sub-spaces.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitutils.h"
#include "vq/codebook.h"
#include "vq/kmeans.h"
#include "vq/vq_config.h"

namespace vqllm::vq {

/**
 * A VQ-compressed 2-D tensor: packed indices plus trained codebooks.
 *
 * Index stream layout is row-major over
 * [row][subspace][residual]; the codebook used for position
 * (row, subspace, residual) is `codebooks[unit(row, subspace) *
 * residuals + residual]`.
 */
struct QuantizedTensor
{
    VQConfig config;
    /** Original tensor shape. */
    std::size_t rows = 0, cols = 0;
    /** Number of codebook scope units (1 for per-tensor). */
    std::size_t scope_units = 1;
    /** Trained codebooks, indexed [unit * residuals + residual]. */
    std::vector<Codebook> codebooks;
    /** Densely packed logical indices. */
    BitStream indices{8};

    /** @return sub-spaces per row (cols / vector_size). */
    std::size_t
    subspaces() const
    {
        return cols / config.vector_size;
    }

    /** @return scope unit owning (row, subspace). */
    std::size_t codebookUnit(std::size_t row, std::size_t subspace) const;

    /** @return codebook for (row, subspace, residual). */
    const Codebook &
    codebookFor(std::size_t row, std::size_t subspace,
                unsigned residual) const
    {
        return codebooks[codebookUnit(row, subspace) * config.residuals +
                         residual];
    }

    /** @return flat position of (row, subspace, residual) in `indices`. */
    std::size_t
    indexPosition(std::size_t row, std::size_t subspace,
                  unsigned residual) const
    {
        return (row * subspaces() + subspace) * config.residuals + residual;
    }

    /** @return packed-index bytes. */
    std::size_t
    indexBytes() const
    {
        return indices.sizeBytes();
    }

    /** @return codebook storage bytes across all units and residuals. */
    std::size_t codebookTotalBytes() const;

    /** @return total compressed bytes (indices + codebooks). */
    std::size_t
    sizeBytes() const
    {
        return indexBytes() + codebookTotalBytes();
    }

    /** @return compressed bytes / FP16 bytes of the original tensor. */
    double
    achievedCompression() const
    {
        return static_cast<double>(sizeBytes()) /
               (static_cast<double>(rows) * cols * 2);
    }
};

/** Trains codebooks and encodes/decodes tensors for one VQ config. */
class VectorQuantizer
{
  public:
    /**
     * @param config  the VQ algorithm configuration
     * @param kmeans  training options; kmeans.sample_limit bounds the
     *                k-means fitting cost on large tensors
     */
    explicit VectorQuantizer(VQConfig config,
                             KMeansOptions kmeans = defaultTraining());

    /**
     * Quantize a [rows, cols] tensor.
     *
     * cols must be divisible by the config's vector size; for PerTile
     * scope, rows/cols are padded conceptually by clamping tiles.
     */
    QuantizedTensor quantize(const Tensor<float> &data) const;

    /** Reconstruct the full tensor from a quantized one. */
    static Tensor<float> dequantize(const QuantizedTensor &qt);

    /**
     * Reconstruct a single sub-vector (all residuals accumulated) into
     * out[0..vector_size).
     */
    static void dequantizeSubvector(const QuantizedTensor &qt,
                                    std::size_t row, std::size_t subspace,
                                    float *out);

    const VQConfig &config() const { return config_; }

    /** Default k-means budget used by the quantizer. */
    static KMeansOptions
    defaultTraining()
    {
        KMeansOptions o;
        o.max_iters = 15;
        o.sample_limit = 8192;
        return o;
    }

  private:
    VQConfig config_;
    KMeansOptions kmeans_;
};

} // namespace vqllm::vq
