/**
 * @file
 * Offline codebook-entry access-frequency profiling (paper Sec. V).
 *
 * During dequantization every packed index is one lookup into its
 * codebook, so the access histogram of a quantized tensor *is* the
 * histogram of its stored indices (lattice indices collapse onto their
 * base entry).  The profiler computes global and per-block histograms —
 * the data behind paper Fig. 8 (skew), Fig. 9 (consistency across
 * blocks), and Tbl. V (#entries above mu+3sigma) — and derives the
 * frequency ordering used by the codebook cache.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "vq/quantizer.h"

namespace vqllm::vq {

/** Access histogram of one codebook. */
struct AccessHistogram
{
    /** Access count per stored entry index. */
    std::vector<std::uint64_t> counts;

    /** @return total accesses. */
    std::uint64_t total() const;

    /** @return mean accesses per entry. */
    double mean() const;

    /** @return population standard deviation of accesses. */
    double stddev() const;

    /** @return number of entries with count > mean + k*stddev. */
    std::size_t entriesAbove(double k_sigma) const;

    /** @return fraction of entries with count below the mean. */
    double fractionBelowMean() const;

    /**
     * @return permutation sorting entries by descending frequency
     *         (perm[new_index] = old_index; ties by old index)
     */
    std::vector<std::uint32_t> frequencyOrder() const;
};

/** Profiling results over a quantized tensor. */
struct ProfileResult
{
    /** One histogram per codebook (unit x residual, same layout). */
    std::vector<AccessHistogram> histograms;

    /**
     * Per-block histograms of codebook 0 for block-consistency analysis
     * (Fig. 9): blocks are contiguous row ranges.
     */
    std::vector<AccessHistogram> block_histograms;
};

/**
 * Profile entry access frequencies of a quantized tensor.
 *
 * @param qt             the quantized tensor
 * @param rows_per_block row-range granularity for per-block histograms
 */
ProfileResult profileAccesses(const QuantizedTensor &qt,
                              std::size_t rows_per_block = 64);

/**
 * Reorder all codebooks of `qt` by descending access frequency and
 * rewrite the packed indices accordingly (codebook cache step 1,
 * Sec. V-B: "the index of the most frequent entry is 0").
 *
 * @return the profile computed before reordering
 */
ProfileResult reorderByFrequency(QuantizedTensor &qt);

/**
 * Synthetic Zipf-distributed access histogram, a stand-in for offline
 * profiling when no quantized tensor is at hand (e.g. latency-model
 * sweeps at paper scale).
 *
 * @param entries codebook entries
 * @param alpha   Zipf skew exponent
 */
AccessHistogram syntheticZipfHistogram(std::size_t entries,
                                       double alpha = 1.0);

} // namespace vqllm::vq
